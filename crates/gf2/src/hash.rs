//! The exponential level hash of Section 4.1.
//!
//! `h : [0, 2^d) -> [0, d]` maps an input `p` to the number of leading
//! zero bits (within `d` bits) of `x = q*p + r`, where `q` and `r` are
//! chosen uniformly at random from `GF(2^d)` in a preprocessing step and
//! shared by all parties. The two properties the algorithms rely on:
//!
//! 1. `Pr{h(p) = l} = 2^{-(l+1)}` for `l < d`, and `Pr{h(p) = d} = 2^{-d}`;
//! 2. the map is pairwise independent: for distinct `p1, p2`, the pair
//!    `(h(p1), h(p2))` is distributed as independent draws.
//!
//! Sharing `(q, r)` is the "stored coins" positionwise coordination: every
//! party samples the *same* positions (or values) into the same levels.

use crate::field::Gf2Field;
use rand::Rng;

/// A sampled member of the pairwise-independent exponential hash family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelHash {
    field: Gf2Field,
    q: u64,
    r: u64,
}

impl LevelHash {
    /// Build the hash over `GF(2^d)` with explicit coefficients. The
    /// coefficients are truncated into the field's element range.
    ///
    /// Use this to reconstruct the exact hash another party sampled (both
    /// sides must use the same `d`).
    pub fn from_parts(d: u32, q: u64, r: u64) -> Self {
        let field = Gf2Field::new(d);
        let q = field.element(q);
        let r = field.element(r);
        Self { field, q, r }
    }

    /// Sample a hash uniformly at random — the preprocessing step of
    /// Section 4.1. Note `q = 0` is permitted (the family is still
    /// pairwise independent over the *pair* `(q, r)` draw).
    pub fn random<R: Rng + ?Sized>(d: u32, rng: &mut R) -> Self {
        let field = Gf2Field::new(d);
        let q = field.element(rng.gen());
        let r = field.element(rng.gen());
        Self { field, q, r }
    }

    /// The field degree `d`; hash values lie in `[0, d]`.
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.field.degree()
    }

    /// The coefficients `(q, r)`, for persisting / sharing the hash.
    #[inline]
    pub fn parts(&self) -> (u64, u64) {
        (self.q, self.r)
    }

    /// Evaluate the hash: the largest `i` such that the `i`
    /// most-significant bits (of the `d`-bit representation) of
    /// `q*p + r` are zero.
    ///
    /// Inputs are reduced into the field domain first, matching the
    /// paper's "position modulo N'" convention.
    #[inline]
    pub fn level(&self, p: u64) -> u32 {
        let x = self.field.affine(self.q, self.r, self.field.element(p));
        let d = self.field.degree();
        if x == 0 {
            d
        } else {
            // bit length of x within d bits; h = d - bitlen.
            d - (64 - x.leading_zeros())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn levels_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = LevelHash::random(16, &mut rng);
        for p in 0..10_000u64 {
            assert!(h.level(p) <= 16);
        }
    }

    #[test]
    fn identity_hash_levels() {
        // With q = 1, r = 0, h(p) counts leading zeros of p itself.
        let h = LevelHash::from_parts(8, 1, 0);
        assert_eq!(h.level(0), 8);
        assert_eq!(h.level(1), 7);
        assert_eq!(h.level(0b1000_0000), 0);
        assert_eq!(h.level(0b0001_0000), 3);
    }

    #[test]
    fn exact_distribution_over_full_domain() {
        // Over the whole domain, an affine map with q != 0 is a bijection,
        // so level frequencies are *exactly* the ideal ones.
        let d = 10;
        let h = LevelHash::from_parts(d, 0x2A7, 0x11F);
        let mut counts = vec![0u64; (d + 1) as usize];
        for p in 0..(1u64 << d) {
            counts[h.level(p) as usize] += 1;
        }
        for l in 0..d {
            assert_eq!(counts[l as usize], 1 << (d - l - 1), "level {l}");
        }
        assert_eq!(counts[d as usize], 1);
    }

    #[test]
    fn pairwise_independence_statistical() {
        // Chi-square-style check: over random (q, r), the joint
        // distribution of (h(p1) >= 1, h(p2) >= 1) factorizes.
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 20_000;
        let (p1, p2) = (123u64, 45_678u64);
        let (mut a, mut b, mut ab) = (0u32, 0u32, 0u32);
        for _ in 0..trials {
            let h = LevelHash::random(16, &mut rng);
            let x = h.level(p1) >= 1;
            let y = h.level(p2) >= 1;
            a += x as u32;
            b += y as u32;
            ab += (x && y) as u32;
        }
        let (pa, pb, pab) = (
            a as f64 / trials as f64,
            b as f64 / trials as f64,
            ab as f64 / trials as f64,
        );
        // Pr{h >= 1} = 1/2; joint should be ~1/4. Allow generous noise.
        assert!((pa - 0.5).abs() < 0.02, "pa = {pa}");
        assert!((pb - 0.5).abs() < 0.02, "pb = {pb}");
        assert!((pab - pa * pb).abs() < 0.02, "pab = {pab}");
    }

    #[test]
    fn shared_hash_reconstructs() {
        let mut rng = StdRng::seed_from_u64(5);
        let h1 = LevelHash::random(24, &mut rng);
        let (q, r) = h1.parts();
        let h2 = LevelHash::from_parts(24, q, r);
        for p in (0..100_000u64).step_by(997) {
            assert_eq!(h1.level(p), h2.level(p));
        }
    }

    #[test]
    fn marginal_distribution_over_coin_draws() {
        // For a FIXED input p, over random (q, r) draws, h(p) must be
        // exponentially distributed: Pr[h = l] = 2^-(l+1). Chi-square
        // check over the first few levels.
        let mut rng = StdRng::seed_from_u64(31);
        let trials = 40_000u64;
        let p = 0xDEAD_BEEFu64;
        let d = 24;
        let mut counts = vec![0u64; 6];
        for _ in 0..trials {
            let h = LevelHash::random(d, &mut rng);
            let l = h.level(p) as usize;
            if l < counts.len() {
                counts[l] += 1;
            }
        }
        let mut chi2 = 0.0f64;
        for (l, &c) in counts.iter().enumerate() {
            let expect = trials as f64 / (1u64 << (l + 1)) as f64;
            chi2 += (c as f64 - expect).powi(2) / expect;
        }
        // 6 cells, ~5 dof: chi2 > 30 would be a catastrophic mismatch.
        assert!(chi2 < 30.0, "chi2 = {chi2}, counts = {counts:?}");
    }

    #[test]
    fn expected_level_is_at_most_two() {
        // E[h] = sum l * 2^-(l+1) < 1; the paper's "expected constant
        // number of levels" argument uses E[h + 1] <= 2.
        let mut rng = StdRng::seed_from_u64(77);
        let h = LevelHash::random(20, &mut rng);
        let n = 1u64 << 16;
        let sum: u64 = (0..n).map(|p| h.level(p) as u64).sum();
        let mean = sum as f64 / n as f64;
        assert!(mean < 1.6, "mean level {mean} too high");
    }
}
