//! Exponential histogram for sums of bounded integers (Datar et al. \[9\]).
//!
//! An arriving item of value `v` is treated as `v` insertions of 1 into
//! the Basic Counting EH, with the resulting histogram computed directly
//! (never materializing the `v` unit insertions): class counts follow the
//! same redundant-binary-counter dynamics, and same-timestamp buckets are
//! kept as run-length `(ts, multiplicity)` entries so the per-item work
//! is polylogarithmic. A single item can still end up spread across up
//! to `O(log N + log R)` bucket classes — the structural reason the sum
//! wave's store-once O(1) insertion (Theorem 3) wins.

use std::collections::VecDeque;
use waves_core::error::WaveError;
use waves_core::estimate::{Estimate, SpaceReport};
use waves_core::space::{delta_coded_bits, elias_gamma_bits};
use waves_core::traits::SumSynopsis;

/// A run of `mult` same-size buckets sharing one timestamp.
#[derive(Debug, Clone, Copy)]
struct Run {
    ts: u64,
    mult: u64,
}

/// Exponential histogram for the sum of the last `N` integers in
/// `[0..R]`, relative error `eps`.
#[derive(Debug, Clone)]
pub struct EhSum {
    max_window: u64,
    max_value: u64,
    eps: f64,
    m: u64,
    pos: u64,
    /// `classes[j]`: runs of buckets of size `2^j`, oldest at the front.
    classes: Vec<VecDeque<Run>>,
    /// Total bucket multiplicity per class.
    counts: Vec<u64>,
    /// Sum of all bucket sizes (equals the sum of unexpired units).
    total: u64,
    last_cascade: u32,
    max_cascade: u32,
    merges: u64,
}

/// Builder for [`EhSum`] — mirrors `SumWave::builder()`.
///
/// Defaults: `max_window = 1024`, `max_value = 65_535`, `eps = 0.1`;
/// validation happens in [`EhSumBuilder::build`].
#[derive(Debug, Clone)]
pub struct EhSumBuilder {
    max_window: u64,
    max_value: u64,
    eps: f64,
}

impl EhSumBuilder {
    /// Maximum queryable window `N` (default 1024).
    pub fn max_window(mut self, n: u64) -> Self {
        self.max_window = n;
        self
    }

    /// Item value bound `R` (default 65_535).
    pub fn max_value(mut self, r: u64) -> Self {
        self.max_value = r;
        self
    }

    /// Relative error bound, `0 < eps < 1` (default 0.1).
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Validate the configuration and build the histogram.
    pub fn build(self) -> Result<EhSum, WaveError> {
        if !(self.eps > 0.0 && self.eps < 1.0) {
            return Err(WaveError::InvalidEpsilon(self.eps));
        }
        if self.max_window == 0 {
            return Err(WaveError::InvalidWindow(0));
        }
        if self.max_value == 0 {
            return Err(WaveError::ValueTooLarge { value: 0, max: 0 });
        }
        Ok(EhSum {
            max_window: self.max_window,
            max_value: self.max_value,
            eps: self.eps,
            m: (1.0 / (2.0 * self.eps)).ceil() as u64,
            pos: 0,
            classes: Vec::new(),
            counts: Vec::new(),
            total: 0,
            last_cascade: 0,
            max_cascade: 0,
            merges: 0,
        })
    }
}

impl EhSum {
    /// Start building: `EhSum::builder().max_window(n).max_value(r).eps(e).build()`.
    pub fn builder() -> EhSumBuilder {
        EhSumBuilder {
            max_window: 1024,
            max_value: 65_535,
            eps: 0.1,
        }
    }

    /// Build an EH-sum with error bound `eps` for windows up to
    /// `max_window` and values up to `max_value` (thin shim over
    /// [`EhSum::builder`]).
    pub fn new(max_window: u64, max_value: u64, eps: f64) -> Result<Self, WaveError> {
        Self::builder()
            .max_window(max_window)
            .max_value(max_value)
            .eps(eps)
            .build()
    }

    /// Maximum window size `N`.
    pub fn max_window(&self) -> u64 {
        self.max_window
    }

    /// The value bound `R`.
    pub fn max_value(&self) -> u64 {
        self.max_value
    }

    /// The configured error bound.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Stream length so far.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Total multiplicity of buckets currently held.
    pub fn buckets(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Classes touched by merges on the last item.
    pub fn last_cascade(&self) -> u32 {
        self.last_cascade
    }

    /// Longest merge cascade observed.
    pub fn max_cascade(&self) -> u32 {
        self.max_cascade
    }

    /// Total merges performed.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Process the next item.
    pub fn push_value(&mut self, v: u64) -> Result<(), WaveError> {
        if v > self.max_value {
            return Err(WaveError::ValueTooLarge {
                value: v,
                max: self.max_value,
            });
        }
        self.pos += 1;
        self.expire();
        if v == 0 {
            self.last_cascade = 0;
            return Ok(());
        }
        if self.classes.is_empty() {
            self.classes.push(VecDeque::new());
            self.counts.push(0);
        }
        self.classes[0].push_back(Run {
            ts: self.pos,
            mult: v,
        });
        self.counts[0] += v;
        self.total += v;
        // Cascade: canonical-counter dynamics per class.
        let mut cascade = 0u32;
        let mut j = 0usize;
        while self.counts[j] >= self.m + 2 {
            let c = self.counts[j];
            // Final count keeps the parity offset from m.
            let f = self.m + ((c - self.m) % 2);
            let pairs = (c - f) / 2;
            let carries = self.merge_oldest_pairs(j, pairs);
            self.counts[j] = f;
            if self.classes.len() == j + 1 {
                self.classes.push(VecDeque::new());
                self.counts.push(0);
            }
            for run in carries {
                self.classes[j + 1].push_back(run);
            }
            self.counts[j + 1] += pairs;
            self.merges += pairs;
            cascade += 1;
            j += 1;
        }
        self.last_cascade = cascade;
        self.max_cascade = self.max_cascade.max(cascade);
        Ok(())
    }

    /// [`EhSum::push_value`] with instrumentation reported into `rec`
    /// (same metric names as [`crate::EhCount::push_bit_recorded`]).
    pub fn push_value_recorded<R: waves_obs::Recorder + ?Sized>(
        &mut self,
        v: u64,
        rec: &R,
    ) -> Result<(), WaveError> {
        use waves_obs::{HistId, MetricId};
        let merges_before = self.merges;
        self.push_value(v)?;
        rec.incr(MetricId::EhPushes, 1);
        if v > 0 {
            let cascade = self.last_cascade as u64;
            rec.observe(HistId::EhCascadeLen, cascade);
            if cascade > 0 {
                rec.incr(MetricId::EhCascades, 1);
                rec.incr(MetricId::EhBucketsMerged, self.merges - merges_before);
            }
        }
        Ok(())
    }

    /// Pop the `2 * pairs` oldest unit-buckets of class `j` and pair them
    /// up; each pair becomes one class-`j+1` bucket timestamped with the
    /// newer member. Returns the carry runs in oldest-first order.
    fn merge_oldest_pairs(&mut self, j: usize, pairs: u64) -> Vec<Run> {
        let mut carries: Vec<Run> = Vec::new();
        let mut need = 2 * pairs;
        // One unpaired bucket left over from the previous (older) run.
        let mut dangling = false;
        while need > 0 {
            let mut run = self.classes[j]
                .pop_front()
                .expect("enough buckets to merge");
            let take = run.mult.min(need);
            run.mult -= take;
            need -= take;
            let mut avail = take;
            if dangling {
                // Pair the dangling older bucket with one from this run;
                // the carry takes this (newer) run's timestamp.
                push_run(
                    &mut carries,
                    Run {
                        ts: run.ts,
                        mult: 1,
                    },
                );
                avail -= 1;
                dangling = false;
            }
            if avail >= 2 {
                push_run(
                    &mut carries,
                    Run {
                        ts: run.ts,
                        mult: avail / 2,
                    },
                );
            }
            if avail % 2 == 1 {
                dangling = true;
            }
            if run.mult > 0 {
                self.classes[j].push_front(run);
            }
        }
        debug_assert!(!dangling, "2*pairs buckets always pair up");
        carries
    }

    fn expire(&mut self) {
        while let Some(j) = self.highest_nonempty() {
            let front = *self.classes[j].front().expect("nonempty");
            if front.ts + self.max_window <= self.pos {
                self.classes[j].pop_front();
                self.counts[j] -= front.mult;
                self.total -= front.mult << j;
            } else {
                break;
            }
        }
    }

    fn highest_nonempty(&self) -> Option<usize> {
        (0..self.classes.len())
            .rev()
            .find(|&j| !self.classes[j].is_empty())
    }

    /// Estimate the sum of the last `n <= N` items.
    pub fn query(&self, n: u64) -> Result<Estimate, WaveError> {
        if n > self.max_window {
            return Err(WaveError::WindowTooLarge {
                requested: n,
                max: self.max_window,
            });
        }
        let s = if n >= self.pos { 1 } else { self.pos - n + 1 };
        let mut total_in = 0u64;
        let mut oldest: Option<(u64, u64)> = None; // (ts, size)
        for (j, q) in self.classes.iter().enumerate() {
            let size = 1u64 << j;
            for run in q {
                if run.ts >= s {
                    total_in += size * run.mult;
                    match oldest {
                        // Same-timestamp buckets arrive together; the
                        // larger class is the older span.
                        Some((ots, osz)) if ots < run.ts || (ots == run.ts && osz >= size) => {}
                        _ => oldest = Some((run.ts, size)),
                    }
                }
            }
        }
        let Some((_, oldest_size)) = oldest else {
            return Ok(Estimate::exact(0));
        };
        if n >= self.pos || oldest_size == 1 {
            return Ok(Estimate::exact(total_in));
        }
        // Midpoint of the straddling bucket's possible contribution
        // [1, size]; see EhCount::query for the error argument.
        Ok(Estimate::midpoint(total_in - oldest_size + 1, total_in))
    }

    /// Serialize into a compact bit encoding (see [`crate::EhCount::encode`]
    /// for the scheme; the sum histogram additionally gamma-codes each
    /// run's multiplicity). Reconstruct with [`EhSum::decode`].
    pub fn encode(&self) -> Vec<u8> {
        use waves_core::codec::{write_deltas, BitWriter};
        let mut w = BitWriter::new();
        w.write_gamma(self.max_window);
        w.write_gamma(self.max_value);
        w.write_gamma(self.m);
        w.write_gamma0(self.pos);
        w.write_gamma0(self.classes.len() as u64);
        for q in &self.classes {
            w.write_gamma0(q.len() as u64);
            let ts: Vec<u64> = q.iter().map(|r| r.ts).collect();
            write_deltas(&mut w, &ts);
            for run in q {
                w.write_gamma(run.mult);
            }
        }
        w.finish()
    }

    /// Reconstruct a histogram from [`EhSum::encode`] output; queries
    /// answer identically, re-encoding is byte-identical, and cascade
    /// telemetry restarts at 0. Corrupt input yields `Err`, never a
    /// panic.
    pub fn decode(bytes: &[u8]) -> Result<Self, waves_core::codec::CodecError> {
        use waves_core::codec::{read_deltas, BitReader, CodecError};
        let mut r = BitReader::new(bytes);
        let max_window = r.read_gamma()?;
        let max_value = r.read_gamma()?;
        let m = r.read_gamma()?;
        if m > 1 << 32 {
            return Err(CodecError::Corrupt("bad m"));
        }
        let mut eh = EhSum::builder()
            .max_window(max_window)
            .max_value(max_value)
            .eps(1.0 / (2.0 * m as f64))
            .build()?;
        debug_assert_eq!(eh.m, m);
        eh.pos = r.read_gamma0()?;
        if eh.pos > 1 << 62 {
            return Err(CodecError::Corrupt("counters inconsistent"));
        }
        let num_classes = r.read_gamma0()? as usize;
        if num_classes > 64 {
            return Err(CodecError::Corrupt("too many classes"));
        }
        let mut newest_allowed = eh.pos;
        for j in 0..num_classes {
            let runs = r.read_gamma0()? as usize;
            if runs > (m as usize) + 1 {
                return Err(CodecError::Corrupt("class overfull"));
            }
            let ts = read_deltas(&mut r, runs)?;
            let mut q: VecDeque<Run> = VecDeque::with_capacity(runs);
            let mut count = 0u64;
            for &t in &ts {
                let mult = r.read_gamma()?;
                // Partial-run merges can leave same-timestamp runs both
                // within a class and straddling adjacent classes, so
                // (unlike EhCount) equality is legal; read_deltas already
                // guarantees the sequence is nondecreasing.
                if t == 0 || t > eh.pos {
                    return Err(CodecError::Corrupt("timestamp beyond pos"));
                }
                if t + max_window <= eh.pos {
                    return Err(CodecError::Corrupt("bucket already expired"));
                }
                count = count
                    .checked_add(mult)
                    .ok_or(CodecError::Corrupt("count overflow"))?;
                q.push_back(Run { ts: t, mult });
            }
            if count > m + 1 {
                return Err(CodecError::Corrupt("class overfull"));
            }
            if let (Some(&newest), true) = (ts.last(), j > 0) {
                if newest > newest_allowed {
                    return Err(CodecError::Corrupt("classes out of age order"));
                }
            }
            if let Some(&oldest) = ts.first() {
                newest_allowed = oldest;
            }
            let size = 1u64
                .checked_shl(j as u32)
                .ok_or(CodecError::Corrupt("class overflow"))?;
            eh.total = count
                .checked_mul(size)
                .and_then(|add| eh.total.checked_add(add))
                .ok_or(CodecError::Corrupt("total overflow"))?;
            eh.classes.push(q);
            eh.counts.push(count);
        }
        Ok(eh)
    }

    /// Space accounting under the same conventions as the waves.
    pub fn space_report(&self) -> SpaceReport {
        let entries: usize = self.classes.iter().map(VecDeque::len).sum();
        let resident_bytes = std::mem::size_of::<Self>()
            + self
                .classes
                .iter()
                .map(|q| q.capacity() * std::mem::size_of::<Run>())
                .sum::<usize>();
        let mut all_ts: Vec<u64> = self
            .classes
            .iter()
            .flat_map(|q| q.iter().map(|r| r.ts))
            .collect();
        all_ts.sort_unstable();
        let mult_bits: u64 = self
            .classes
            .iter()
            .flat_map(|q| q.iter().map(|r| elias_gamma_bits(r.mult)))
            .sum();
        let nr = 2 * self.max_window.saturating_mul(self.max_value).max(1);
        let counter_bits = 64 - (nr - 1).leading_zeros() as u64;
        let synopsis_bits = 2 * counter_bits
            + delta_coded_bits(all_ts)
            + mult_bits
            + entries as u64 * elias_gamma_bits(self.classes.len() as u64 + 1);
        SpaceReport {
            resident_bytes,
            synopsis_bits,
            entries,
        }
    }
}

/// Append a run, coalescing with the previous one when timestamps match.
fn push_run(runs: &mut Vec<Run>, run: Run) {
    if let Some(last) = runs.last_mut() {
        if last.ts == run.ts {
            last.mult += run.mult;
            return;
        }
    }
    runs.push(run);
}

impl waves_core::traits::Synopsis for EhSum {
    fn name(&self) -> &'static str {
        "eh-sum"
    }
    fn max_window(&self) -> u64 {
        self.max_window
    }
    fn space_report(&self) -> SpaceReport {
        EhSum::space_report(self)
    }
}

impl SumSynopsis for EhSum {
    fn push_value(&mut self, v: u64) -> Result<(), WaveError> {
        EhSum::push_value(self, v)
    }
    fn query_window(&self, n: u64) -> Result<Estimate, WaveError> {
        self.query(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waves_core::exact::ExactSum;

    fn lcg_vals(seed: u64, len: usize, r: u64) -> Vec<u64> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % (r + 1)
            })
            .collect()
    }

    #[test]
    fn whole_stream_exact() {
        let mut eh = EhSum::new(100, 50, 0.25).unwrap();
        for v in [10u64, 0, 25, 7] {
            eh.push_value(v).unwrap();
        }
        assert_eq!(eh.query(100).unwrap(), Estimate::exact(42));
    }

    #[test]
    fn unit_values_match_basic_counting_behavior() {
        // R = 1 degenerates to Basic Counting; compare with EhCount.
        use crate::basic::EhCount;
        let (eps, n) = (0.25, 64u64);
        let mut es = EhSum::new(n, 1, eps).unwrap();
        let mut ec = EhCount::new(n, eps).unwrap();
        let mut oracle = ExactSum::new(n);
        for v in lcg_vals(4, 3000, 1) {
            es.push_value(v).unwrap();
            ec.push_bit(v == 1);
            oracle.push_value(v);
            let actual = oracle.query(n);
            assert!(es.query(n).unwrap().relative_error(actual) <= eps + 1e-9);
            assert!(ec.query(n).unwrap().relative_error(actual) <= eps + 1e-9);
        }
    }

    #[test]
    fn error_bound_holds() {
        for &(eps, n_max, r) in &[(0.5, 64u64, 15u64), (0.25, 128, 255), (0.125, 64, 31)] {
            let mut eh = EhSum::new(n_max, r, eps).unwrap();
            let mut oracle = ExactSum::new(n_max);
            for v in lcg_vals(8, 4000, r) {
                eh.push_value(v).unwrap();
                oracle.push_value(v);
                let actual = oracle.query(n_max);
                let est = eh.query(n_max).unwrap();
                assert!(est.brackets(actual), "[{},{}] vs {actual}", est.lo, est.hi);
                assert!(
                    est.relative_error(actual) <= eps + 1e-9,
                    "eps={eps} r={r} actual={actual} est={}",
                    est.value
                );
            }
        }
    }

    #[test]
    fn large_single_values() {
        let (eps, n, r) = (0.25, 64u64, 1u64 << 16);
        let mut eh = EhSum::new(n, r, eps).unwrap();
        let mut oracle = ExactSum::new(n);
        for i in 0..2000u64 {
            let v = if i % 50 == 0 { r } else { 0 };
            eh.push_value(v).unwrap();
            oracle.push_value(v);
            let actual = oracle.query(n);
            let est = eh.query(n).unwrap();
            assert!(
                est.relative_error(actual) <= eps + 1e-9,
                "i={i} actual={actual} est={}",
                est.value
            );
        }
    }

    #[test]
    fn counts_invariant_after_cascades() {
        let (eps, n, r) = (0.2, 1u64 << 10, 1u64 << 10);
        let mut eh = EhSum::new(n, r, eps).unwrap();
        for v in lcg_vals(21, 20_000, r) {
            eh.push_value(v).unwrap();
            for (j, q) in eh.classes.iter().enumerate() {
                let c: u64 = q.iter().map(|run| run.mult).sum();
                assert_eq!(c, eh.counts[j], "class {j} count mismatch");
                assert!(c <= eh.m + 1, "class {j} holds {c} > m+1 buckets");
                // Runs must be oldest-first.
                assert!(q.iter().zip(q.iter().skip(1)).all(|(a, b)| a.ts <= b.ts));
            }
        }
    }

    #[test]
    fn item_spread_across_many_classes() {
        // The structural cost the wave avoids: one large item lands in
        // multiple classes after cascading.
        let mut eh = EhSum::new(1 << 12, 1 << 12, 0.25).unwrap();
        for _ in 0..20 {
            eh.push_value(1 << 12).unwrap();
        }
        let nonempty = eh.classes.iter().filter(|q| !q.is_empty()).count();
        assert!(nonempty >= 4, "only {nonempty} classes used");
        assert!(eh.max_cascade() >= 4);
    }

    #[test]
    fn zeros_only() {
        let mut eh = EhSum::new(16, 10, 0.5).unwrap();
        for _ in 0..100 {
            eh.push_value(0).unwrap();
        }
        assert_eq!(eh.query(16).unwrap(), Estimate::exact(0));
        assert_eq!(eh.buckets(), 0);
    }
}
