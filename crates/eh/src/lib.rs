//! `waves-eh`: the exponential-histogram baseline.
//!
//! Implements the synopses of Datar, Gionis, Indyk & Motwani,
//! *Maintaining Stream Statistics over Sliding Windows* (SIAM J. Comput.
//! 2002) — reference \[9\] of the waves paper and the algorithms it is
//! benchmarked against:
//!
//! * [`EhCount`] — Basic Counting (eps relative error, O(1) amortized /
//!   O(log N) worst-case per item due to cascading bucket merges);
//! * [`EhSum`] — sums of integers in `[0..R]` (an item may spread across
//!   `O(log N + log R)` buckets).
//!
//! Both record merge-cascade statistics so experiments can show the
//! worst-case per-item gap that the deterministic wave closes.
//!
//! [`XuCount`] adds Xu's boosted basic counting (arXiv:1312.0042) as a
//! second baseline: O(1) worst-case updates with deferred batch
//! compression instead of per-arrival cascades, cross-checked against
//! the EH and the exact oracle in `tests/det_vs_exact.rs`.
//!
//! ```
//! use waves_eh::EhCount;
//!
//! let mut eh = EhCount::new(1_000, 0.1).unwrap();
//! for i in 0..5_000u64 {
//!     eh.push_bit(i % 2 == 0);
//! }
//! let est = eh.query(1_000).unwrap();
//! assert!(est.relative_error(500) <= 0.1);
//! ```

pub mod basic;
pub mod sum;
pub mod xu;

pub use basic::{EhCount, EhCountBuilder};
pub use sum::{EhSum, EhSumBuilder};
pub use xu::XuCount;

use waves_core::codec::CodecError;
use waves_core::SynopsisCodec;

impl SynopsisCodec for EhCount {
    fn encode_synopsis(&self) -> Vec<u8> {
        self.encode()
    }
    fn decode_synopsis(bytes: &[u8]) -> Result<Self, CodecError> {
        EhCount::decode(bytes)
    }
}

impl SynopsisCodec for EhSum {
    fn encode_synopsis(&self) -> Vec<u8> {
        self.encode()
    }
    fn decode_synopsis(bytes: &[u8]) -> Result<Self, CodecError> {
        EhSum::decode(bytes)
    }
}

impl SynopsisCodec for XuCount {
    fn encode_synopsis(&self) -> Vec<u8> {
        self.encode()
    }
    fn decode_synopsis(bytes: &[u8]) -> Result<Self, CodecError> {
        XuCount::decode(bytes)
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use waves_core::exact::{ExactCount, ExactSum};

    /// Streams biased toward the packed-word boundary cases (len % 64
    /// ∈ {0, 1, 63}, empty, all-ones) plus sparse and dense random
    /// streams.
    fn packed_stream() -> impl Strategy<Value = Vec<bool>> {
        prop_oneof![
            1 => prop::collection::vec(prop::bool::weighted(0.5), 0..1500),
            1 => prop::collection::vec(prop::bool::weighted(0.02), 0..1500),
            1 => (prop::collection::vec(any::<bool>(), 129..=129), 0usize..=7)
                .prop_map(|(mut v, i): (Vec<bool>, usize)| {
                    v.truncate([0usize, 1, 63, 64, 65, 127, 128, 129][i]);
                    v
                }),
            1 => (0usize..=4).prop_map(|i: usize| vec![true; [1usize, 63, 64, 65, 128][i]]),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn eh_count_eps_guarantee(
            bits in prop::collection::vec(prop::bool::weighted(0.5), 0..1500),
            inv_eps in 2u64..=10,
            n_max in 8u64..=128,
        ) {
            let eps = 1.0 / inv_eps as f64;
            let mut eh = EhCount::new(n_max, eps).unwrap();
            let mut oracle = ExactCount::new(n_max);
            for (i, &b) in bits.iter().enumerate() {
                eh.push_bit(b);
                oracle.push_bit(b);
                if i % 19 == 0 || i + 1 == bits.len() {
                    let actual = oracle.query(n_max);
                    let est = eh.query(n_max).unwrap();
                    prop_assert!(est.brackets(actual));
                    prop_assert!(est.relative_error(actual) <= eps + 1e-9);
                }
            }
        }

        /// Encode/decode round-trips: the reconstruction answers every
        /// window query identically and re-encodes byte-for-byte.
        #[test]
        fn eh_count_codec_roundtrip(
            bits in prop::collection::vec(prop::bool::weighted(0.5), 0..1200),
            inv_eps in 2u64..=10,
            n_max in 8u64..=128,
        ) {
            let mut eh = EhCount::new(n_max, 1.0 / inv_eps as f64).unwrap();
            for &b in &bits {
                eh.push_bit(b);
            }
            let bytes = eh.encode();
            let decoded = EhCount::decode(&bytes).unwrap();
            for n in [1u64, n_max / 2 + 1, n_max] {
                prop_assert_eq!(eh.query(n).unwrap(), decoded.query(n).unwrap());
            }
            prop_assert_eq!(decoded.encode(), bytes);
            prop_assert_eq!(decoded.pos(), eh.pos());
            prop_assert_eq!(decoded.buckets(), eh.buckets());
        }

        #[test]
        fn eh_sum_codec_roundtrip(
            vals in prop::collection::vec(0u64..=64, 0..800),
            inv_eps in 2u64..=8,
            n_max in 8u64..=64,
        ) {
            let mut eh = EhSum::new(n_max, 64, 1.0 / inv_eps as f64).unwrap();
            for &v in &vals {
                eh.push_value(v).unwrap();
            }
            let bytes = eh.encode();
            let decoded = EhSum::decode(&bytes).unwrap();
            for n in [1u64, n_max / 2 + 1, n_max] {
                prop_assert_eq!(eh.query(n).unwrap(), decoded.query(n).unwrap());
            }
            prop_assert_eq!(decoded.encode(), bytes);
            prop_assert_eq!(decoded.pos(), eh.pos());
            prop_assert_eq!(decoded.buckets(), eh.buckets());
        }

        /// Word-packed ingestion is indistinguishable from per-bit
        /// ingestion: same encoded bytes, same answers, including
        /// buffers split at arbitrary chunk boundaries and the packed
        /// boundary lengths (len % 64 ∈ {0, 1, 63}, empty, all-ones).
        #[test]
        fn eh_push_words_matches_single_pushes(
            bits in packed_stream(),
            chunk in 1usize..=150,
            inv_eps in 2u64..=10,
            n_max in 8u64..=128,
        ) {
            let eps = 1.0 / inv_eps as f64;
            let mut single = EhCount::new(n_max, eps).unwrap();
            let mut worded = EhCount::new(n_max, eps).unwrap();
            let mut chunked = EhCount::new(n_max, eps).unwrap();
            for &b in &bits {
                single.push_bit(b);
            }
            worded.push_words(waves_core::bits::Bits::from_bools(&bits).as_ref());
            for c in bits.chunks(chunk) {
                chunked.push_words(waves_core::bits::Bits::from_bools(c).as_ref());
            }
            prop_assert_eq!(single.encode(), worded.encode());
            prop_assert_eq!(single.encode(), chunked.encode());
            prop_assert_eq!(single.buckets(), worded.buckets());
            for n in [1u64, n_max / 2 + 1, n_max] {
                prop_assert_eq!(single.query(n).unwrap(), worded.query(n).unwrap());
            }
        }

        /// Decoding adversarial bytes returns Err or a structure whose
        /// queries still work — never a panic.
        #[test]
        fn eh_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
            if let Ok(eh) = EhCount::decode(&bytes) {
                let _ = eh.query(eh.max_window());
            }
            if let Ok(eh) = EhSum::decode(&bytes) {
                let _ = eh.query(eh.max_window());
            }
        }

        #[test]
        fn eh_sum_eps_guarantee(
            vals in prop::collection::vec(0u64..=64, 0..1000),
            inv_eps in 2u64..=8,
            n_max in 8u64..=64,
        ) {
            let eps = 1.0 / inv_eps as f64;
            let mut eh = EhSum::new(n_max, 64, eps).unwrap();
            let mut oracle = ExactSum::new(n_max);
            for (i, &v) in vals.iter().enumerate() {
                eh.push_value(v).unwrap();
                oracle.push_value(v);
                if i % 17 == 0 || i + 1 == vals.len() {
                    let actual = oracle.query(n_max);
                    let est = eh.query(n_max).unwrap();
                    prop_assert!(est.brackets(actual));
                    prop_assert!(est.relative_error(actual) <= eps + 1e-9);
                }
            }
        }
    }
}
