//! Xu-style boosted basic counting (arXiv:1312.0042).
//!
//! A second ε-relative-error baseline next to the exponential
//! histogram, with a different maintenance discipline: instead of
//! cascading power-of-two merges on every arrival, each 1-bit appends a
//! singleton *block* in O(1) worst case and compression is deferred —
//! when the block list outgrows a fixed cap, one batch pass greedily
//! merges adjacent blocks under the slack rule
//! `count <= max(1, S_newer / inv)` (`inv = ceil(1/eps)`, integer
//! division), where `S_newer` is the number of 1's in strictly newer
//! blocks. That "boosting" trades the EH's O(log) worst-case cascade
//! for an O(1) worst-case update with amortized batch compression,
//! while keeping the same query-time guarantee: the straddling block
//! contributes an interval of width `count - 1 <= eps * S_newer`, so
//! the midpoint answer has relative error below `eps/2`.
//!
//! The slack rule is monotone — `S_newer` only grows after a merge, so
//! a block that satisfied its cap at merge time satisfies it forever —
//! which is what makes deferred compression sound.

use std::collections::VecDeque;
use waves_core::error::WaveError;
use waves_core::estimate::{Estimate, SpaceReport};
use waves_core::space::{delta_coded_bits, elias_gamma_bits};
use waves_core::traits::BitSynopsis;

/// Boosted basic counting over a sliding window of up to `N` bits with
/// relative error `eps`: O(1) worst-case update, O((1/eps) log(eps N))
/// blocks.
#[derive(Debug, Clone)]
pub struct XuCount {
    max_window: u64,
    /// Quantized inverse error `inv = ceil(1/eps)`; the effective error
    /// bound is `1/inv <= eps` and the only quantity the slack rule
    /// consults, so it stands in for `eps` in the codec.
    inv: u64,
    pos: u64,
    /// Blocks oldest at the front: `(ts, count)` where `ts` is the
    /// position of the block's most recent 1 and `count >= 1` its
    /// number of 1's. Timestamps are strictly increasing.
    blocks: VecDeque<(u64, u64)>,
    /// Compression trigger: batch-compress when `blocks.len()` exceeds
    /// this (a constant multiple of the post-compression bound).
    compress_at: usize,
    /// Batch compressions run so far (the boosted counterpart of the
    /// EH's cascade statistics).
    compressions: u64,
}

impl XuCount {
    /// Build a counter with error bound `eps` for windows up to
    /// `max_window`.
    pub fn new(max_window: u64, eps: f64) -> Result<Self, WaveError> {
        if !(eps > 0.0 && eps < 1.0) {
            return Err(WaveError::InvalidEpsilon(eps));
        }
        if max_window == 0 {
            return Err(WaveError::InvalidWindow(0));
        }
        let inv = (1.0 / eps).ceil() as u64;
        Ok(Self::with_inv(max_window, inv))
    }

    fn with_inv(max_window: u64, inv: u64) -> Self {
        // Post-compression block count is O((1/eps) log(eps N)): an
        // `inv`-long singleton prefix plus geometric growth. Compress
        // at a small multiple so updates stay O(1) amortized.
        let levels = 64 - max_window.leading_zeros() as usize;
        let compress_at = 16 + 4 * inv as usize * (1 + levels);
        XuCount {
            max_window,
            inv,
            pos: 0,
            blocks: VecDeque::new(),
            compress_at,
            compressions: 0,
        }
    }

    /// Maximum window size `N`.
    pub fn max_window(&self) -> u64 {
        self.max_window
    }

    /// The effective (quantized) error bound `1/ceil(1/eps)`.
    pub fn eps(&self) -> f64 {
        1.0 / self.inv as f64
    }

    /// Stream length so far.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Number of blocks currently held.
    pub fn blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Batch compressions run so far.
    pub fn compressions(&self) -> u64 {
        self.compressions
    }

    /// Largest count a block may reach when `s_newer` 1's sit in
    /// strictly newer blocks.
    fn cap(&self, s_newer: u64) -> u64 {
        (s_newer / self.inv).max(1)
    }

    /// Process the next stream bit: O(1) worst case (append or
    /// pop), with compression deferred to a batch pass.
    pub fn push_bit(&mut self, b: bool) {
        self.pos += 1;
        self.expire();
        if b {
            self.insert_one();
        }
    }

    fn insert_one(&mut self) {
        self.blocks.push_back((self.pos, 1));
        if self.blocks.len() > self.compress_at {
            self.compress();
        }
    }

    /// Ingest a packed batch, oldest first: zero runs advance `pos` in
    /// one addition, expiry runs per 1-bit and once at the end (the
    /// same deferral argument as `EhCount::push_words`).
    pub fn push_words(&mut self, bits: waves_core::bits::BitsRef<'_>) {
        use waves_core::bits::Run;
        bits.scan_runs(|run| match run {
            Run::Zeros(n) => self.pos += n,
            Run::One => {
                self.pos += 1;
                self.expire();
                self.insert_one();
            }
        });
        self.expire();
    }

    fn expire(&mut self) {
        while let Some(&(ts, _)) = self.blocks.front() {
            if ts + self.max_window <= self.pos {
                self.blocks.pop_front();
            } else {
                break;
            }
        }
    }

    /// One batch pass, newest to oldest: greedily absorb each older
    /// block into the current one while the merged count stays within
    /// the slack cap for the 1's already emitted as newer blocks.
    fn compress(&mut self) {
        let mut kept: Vec<(u64, u64)> = Vec::with_capacity(self.blocks.len());
        let mut newer_sum = 0u64;
        let mut cur: Option<(u64, u64)> = None;
        for &(ts, count) in self.blocks.iter().rev() {
            match cur {
                None => cur = Some((ts, count)),
                Some((cur_ts, cur_count)) => {
                    if cur_count + count <= self.cap(newer_sum) {
                        // Merged block keeps the newer timestamp.
                        cur = Some((cur_ts, cur_count + count));
                    } else {
                        kept.push((cur_ts, cur_count));
                        newer_sum += cur_count;
                        cur = Some((ts, count));
                    }
                }
            }
        }
        kept.extend(cur);
        self.blocks = kept.into_iter().rev().collect();
        self.compressions += 1;
    }

    /// Estimate the number of 1's among the last `n <= N` bits: blocks
    /// strictly newer than the straddling block are complete; the
    /// straddling block (oldest with its newest 1 in window)
    /// contributes between 1 and its count.
    pub fn query(&self, n: u64) -> Result<Estimate, WaveError> {
        if n > self.max_window {
            return Err(WaveError::WindowTooLarge {
                requested: n,
                max: self.max_window,
            });
        }
        let s = if n >= self.pos { 1 } else { self.pos - n + 1 };
        let mut full = 0u64;
        let mut straddle: Option<u64> = None;
        for &(ts, count) in &self.blocks {
            if ts < s {
                continue;
            }
            if straddle.is_none() {
                straddle = Some(count);
            } else {
                full += count;
            }
        }
        let Some(c) = straddle else {
            return Ok(Estimate::exact(0));
        };
        if n >= self.pos || c == 1 {
            // Whole-stream window (all blocks complete) or a singleton
            // straddler whose only 1 is in window: exact.
            return Ok(Estimate::exact(full + c));
        }
        Ok(Estimate::midpoint(full + 1, full + c))
    }

    /// Serialize under the same conventions as the EH codec:
    /// gamma-coded parameters (`inv` stands in for `eps`), delta-coded
    /// block timestamps, then per-block counts. Compression telemetry
    /// is not state and is not encoded. Reconstruct with
    /// [`XuCount::decode`].
    pub fn encode(&self) -> Vec<u8> {
        use waves_core::codec::{write_deltas, BitWriter};
        let mut w = BitWriter::new();
        w.write_gamma(self.max_window);
        w.write_gamma(self.inv);
        w.write_gamma0(self.pos);
        w.write_gamma0(self.blocks.len() as u64);
        let ts: Vec<u64> = self.blocks.iter().map(|&(t, _)| t).collect();
        write_deltas(&mut w, &ts);
        for &(_, count) in &self.blocks {
            w.write_gamma(count);
        }
        w.finish()
    }

    /// Reconstruct from [`XuCount::encode`] output: answers queries
    /// identically and re-encodes to the same bytes. Corrupt input
    /// yields `Err`, never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Self, waves_core::codec::CodecError> {
        use waves_core::codec::{read_deltas, BitReader, CodecError};
        let mut r = BitReader::new(bytes);
        let max_window = r.read_gamma()?;
        if max_window == 0 {
            return Err(CodecError::Corrupt("bad window"));
        }
        let inv = r.read_gamma()?;
        if inv == 0 || inv > 1 << 32 {
            return Err(CodecError::Corrupt("bad inv"));
        }
        let mut xu = XuCount::with_inv(max_window, inv);
        xu.pos = r.read_gamma0()?;
        if xu.pos > 1 << 62 {
            return Err(CodecError::Corrupt("counters inconsistent"));
        }
        let len = r.read_gamma0()? as usize;
        if len > xu.compress_at + 1 {
            return Err(CodecError::Corrupt("too many blocks"));
        }
        let ts = read_deltas(&mut r, len)?;
        let mut prev = 0u64;
        for &t in &ts {
            if t == 0 || t > xu.pos || t <= prev {
                return Err(CodecError::Corrupt("timestamps not increasing"));
            }
            if t + max_window <= xu.pos {
                return Err(CodecError::Corrupt("block already expired"));
            }
            prev = t;
        }
        for t in ts {
            let count = r.read_gamma()?;
            if count == 0 || count > xu.pos {
                return Err(CodecError::Corrupt("bad block count"));
            }
            xu.blocks.push_back((t, count));
        }
        Ok(xu)
    }

    /// Space accounting under the same conventions as the waves and
    /// the EH.
    pub fn space_report(&self) -> SpaceReport {
        let entries = self.blocks.len();
        let resident_bytes = std::mem::size_of::<Self>()
            + self.blocks.capacity() * std::mem::size_of::<(u64, u64)>();
        let ts: Vec<u64> = self.blocks.iter().map(|&(t, _)| t).collect();
        let counter_bits = 64 - (2 * self.max_window - 1).leading_zeros() as u64;
        let synopsis_bits = 2 * counter_bits
            + delta_coded_bits(ts)
            + self
                .blocks
                .iter()
                .map(|&(_, c)| elias_gamma_bits(c))
                .sum::<u64>();
        SpaceReport {
            resident_bytes,
            synopsis_bits,
            entries,
        }
    }
}

impl waves_core::traits::Synopsis for XuCount {
    fn name(&self) -> &'static str {
        "xu"
    }
    fn max_window(&self) -> u64 {
        self.max_window
    }
    fn space_report(&self) -> SpaceReport {
        XuCount::space_report(self)
    }
}

impl BitSynopsis for XuCount {
    fn push_bit(&mut self, b: bool) {
        XuCount::push_bit(self, b)
    }
    fn push_words(&mut self, bits: waves_core::bits::BitsRef<'_>) {
        XuCount::push_words(self, bits)
    }
    fn query_window(&self, n: u64) -> Result<Estimate, WaveError> {
        self.query(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waves_core::exact::ExactCount;

    fn lcg_bits(seed: u64, len: usize, m: u64, lt: u64) -> Vec<bool> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % m < lt
            })
            .collect()
    }

    #[test]
    fn whole_stream_exact() {
        let mut xu = XuCount::new(100, 0.25).unwrap();
        for b in [true, false, true, true] {
            xu.push_bit(b);
        }
        assert_eq!(xu.query(100).unwrap(), Estimate::exact(3));
    }

    #[test]
    fn error_bound_holds() {
        for &(eps, n_max) in &[(0.5, 64u64), (0.25, 128), (0.1, 256)] {
            let mut xu = XuCount::new(n_max, eps).unwrap();
            let mut oracle = ExactCount::new(n_max);
            for b in lcg_bits(1, 6000, 10, 4) {
                xu.push_bit(b);
                oracle.push_bit(b);
                let actual = oracle.query(n_max);
                let est = xu.query(n_max).unwrap();
                assert!(est.brackets(actual), "[{},{}] vs {actual}", est.lo, est.hi);
                assert!(
                    est.relative_error(actual) <= eps + 1e-9,
                    "eps={eps} actual={actual} est={}",
                    est.value
                );
            }
        }
    }

    #[test]
    fn error_bound_smaller_windows() {
        let (eps, n_max) = (0.2, 128u64);
        let mut xu = XuCount::new(n_max, eps).unwrap();
        let mut oracle = ExactCount::new(n_max);
        for (i, b) in lcg_bits(9, 4000, 3, 1).into_iter().enumerate() {
            xu.push_bit(b);
            oracle.push_bit(b);
            if i % 29 == 0 {
                for n in [5u64, 40, 128] {
                    let actual = oracle.query(n);
                    let est = xu.query(n).unwrap();
                    assert!(
                        est.relative_error(actual) <= eps + 1e-9,
                        "i={i} n={n} actual={actual} est={:?}",
                        est
                    );
                }
            }
        }
    }

    #[test]
    fn updates_never_cascade_but_blocks_stay_bounded() {
        let mut xu = XuCount::new(1 << 12, 0.1).unwrap();
        for _ in 0..100_000 {
            xu.push_bit(true);
        }
        // Deferred compression keeps the list within the trigger bound
        // at all times; on an all-ones stream it must actually fire.
        assert!(xu.blocks() <= xu.compress_at + 1, "{} blocks", xu.blocks());
        assert!(xu.compressions() > 0);
    }

    #[test]
    fn slack_invariant_holds_after_compression() {
        let mut xu = XuCount::new(1 << 10, 0.125).unwrap();
        for b in lcg_bits(3, 50_000, 2, 1) {
            xu.push_bit(b);
        }
        // Every non-singleton block respects the monotone slack cap.
        let mut newer_sum = 0u64;
        for &(_, count) in xu.blocks.iter().rev() {
            assert!(
                count == 1 || count <= xu.cap(newer_sum),
                "count {count} exceeds cap({newer_sum})"
            );
            newer_sum += count;
        }
    }

    #[test]
    fn push_words_matches_per_bit() {
        use waves_core::bits::Bits;
        let stream = lcg_bits(11, 3000, 3, 1);
        let mut per_bit = XuCount::new(512, 0.2).unwrap();
        let mut packed = XuCount::new(512, 0.2).unwrap();
        let mut bits = Bits::new();
        for &b in &stream {
            per_bit.push_bit(b);
            bits.push(b);
        }
        packed.push_words(bits.as_ref());
        assert_eq!(per_bit.pos(), packed.pos());
        for n in [1u64, 17, 256, 512] {
            assert_eq!(
                per_bit.query(n).unwrap(),
                packed.query(n).unwrap(),
                "window {n}"
            );
        }
    }

    #[test]
    fn codec_roundtrip_is_byte_identical() {
        let mut xu = XuCount::new(2048, 0.1).unwrap();
        for b in lcg_bits(5, 20_000, 4, 1) {
            xu.push_bit(b);
        }
        let bytes = xu.encode();
        let back = XuCount::decode(&bytes).unwrap();
        assert_eq!(back.encode(), bytes);
        for n in [1u64, 100, 777, 2048] {
            assert_eq!(xu.query(n).unwrap(), back.query(n).unwrap());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(XuCount::decode(&[]).is_err());
        let mut xu = XuCount::new(64, 0.25).unwrap();
        for b in lcg_bits(2, 500, 2, 1) {
            xu.push_bit(b);
        }
        let bytes = xu.encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            let _ = XuCount::decode(&bad); // must not panic
        }
    }

    #[test]
    fn expiry_empties_structure() {
        let mut xu = XuCount::new(32, 0.25).unwrap();
        for _ in 0..100 {
            xu.push_bit(true);
        }
        for _ in 0..40 {
            xu.push_bit(false);
        }
        assert_eq!(xu.query(32).unwrap(), Estimate::exact(0));
        assert_eq!(xu.blocks(), 0);
    }
}
