//! Exponential histogram for Basic Counting (Datar et al. \[9\]).
//!
//! The baseline the paper improves upon. Buckets of power-of-two sizes
//! partition the recent 1's; for each size there are `m` or `m + 1`
//! buckets (`m = ceil(1/(2 eps))`), enforced by merging the two oldest
//! buckets of a size whenever a size accumulates `m + 2` — which can
//! cascade through all `O(log(eps N))` sizes on a single arrival. That
//! cascade is exactly the worst-case-latency gap the deterministic wave
//! closes (Theorem 1 vs. the EH's O(1) *amortized* / O(log N) worst
//! case), so this implementation records cascade statistics.

use std::collections::VecDeque;
use waves_core::error::WaveError;
use waves_core::estimate::{Estimate, SpaceReport};
use waves_core::space::{delta_coded_bits, elias_gamma_bits};
use waves_core::traits::BitSynopsis;

/// Exponential histogram for counting 1's in a sliding window of up to
/// `N` bits with relative error `eps`.
#[derive(Debug, Clone)]
pub struct EhCount {
    max_window: u64,
    eps: f64,
    /// Bucket-count parameter `m = ceil(1/(2 eps))`.
    m: usize,
    pos: u64,
    /// Per-size-class deques of bucket timestamps (position of each
    /// bucket's most recent 1), oldest at the front. `classes[j]` holds
    /// buckets of size `2^j`.
    classes: Vec<VecDeque<u64>>,
    /// Sum of all bucket sizes.
    total: u64,
    /// Cascade statistics: classes touched by merges on the last 1-bit,
    /// the maximum over the stream, and total merges.
    last_cascade: u32,
    max_cascade: u32,
    merges: u64,
}

/// Builder for [`EhCount`] — mirrors `DetWave::builder()` so switching
/// between the wave and the EH baseline is a one-word change.
///
/// Defaults: `max_window = 1024`, `eps = 0.1`; validation happens in
/// [`EhCountBuilder::build`].
#[derive(Debug, Clone)]
pub struct EhCountBuilder {
    max_window: u64,
    eps: f64,
}

impl EhCountBuilder {
    /// Maximum queryable window `N` (default 1024).
    pub fn max_window(mut self, n: u64) -> Self {
        self.max_window = n;
        self
    }

    /// Relative error bound, `0 < eps < 1` (default 0.1).
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Validate the configuration and build the histogram.
    pub fn build(self) -> Result<EhCount, WaveError> {
        if !(self.eps > 0.0 && self.eps < 1.0) {
            return Err(WaveError::InvalidEpsilon(self.eps));
        }
        if self.max_window == 0 {
            return Err(WaveError::InvalidWindow(0));
        }
        let m = (1.0 / (2.0 * self.eps)).ceil() as usize;
        Ok(EhCount {
            max_window: self.max_window,
            eps: self.eps,
            m,
            pos: 0,
            classes: Vec::new(),
            total: 0,
            last_cascade: 0,
            max_cascade: 0,
            merges: 0,
        })
    }
}

impl EhCount {
    /// Start building: `EhCount::builder().max_window(n).eps(e).build()`.
    pub fn builder() -> EhCountBuilder {
        EhCountBuilder {
            max_window: 1024,
            eps: 0.1,
        }
    }

    /// Build an EH with error bound `eps` for windows up to `max_window`
    /// (thin shim over [`EhCount::builder`]).
    pub fn new(max_window: u64, eps: f64) -> Result<Self, WaveError> {
        Self::builder().max_window(max_window).eps(eps).build()
    }

    /// Maximum window size `N`.
    pub fn max_window(&self) -> u64 {
        self.max_window
    }

    /// The configured error bound.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Stream length so far.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Number of buckets currently held.
    pub fn buckets(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// Number of size classes with merges on the most recent 1-bit.
    pub fn last_cascade(&self) -> u32 {
        self.last_cascade
    }

    /// Longest merge cascade observed so far.
    pub fn max_cascade(&self) -> u32 {
        self.max_cascade
    }

    /// Total merges performed.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Process the next stream bit: O(1) amortized, O(log(eps N)) worst
    /// case due to cascading merges.
    pub fn push_bit(&mut self, b: bool) {
        self.pos += 1;
        self.expire();
        if !b {
            self.last_cascade = 0;
            return;
        }
        self.insert_one();
    }

    /// Insert a 1-bit at the current position (`pos` already advanced
    /// and expiry already run) and cascade merges.
    fn insert_one(&mut self) {
        // New singleton bucket.
        if self.classes.is_empty() {
            self.classes.push(VecDeque::new());
        }
        self.classes[0].push_back(self.pos);
        self.total += 1;
        // Cascade merges upward.
        let mut cascade = 0u32;
        let mut j = 0usize;
        loop {
            if self.classes[j].len() <= self.m + 1 {
                break;
            }
            // Merge the two oldest buckets of size 2^j: the merged bucket
            // keeps the newer timestamp.
            let _older = self.classes[j].pop_front().expect("len > m+1 >= 1");
            let newer = self.classes[j].pop_front().expect("len >= 2");
            if self.classes.len() == j + 1 {
                self.classes.push(VecDeque::new());
            }
            self.classes[j + 1].push_back(newer);
            // A push_back would break front-is-oldest ordering only if a
            // newer bucket already sat in class j+1 — impossible: class
            // j+1 buckets are strictly older than all class-j buckets.
            debug_assert!(is_front_oldest(&self.classes[j + 1]));
            self.merges += 1;
            cascade += 1;
            j += 1;
        }
        self.last_cascade = cascade;
        self.max_cascade = self.max_cascade.max(cascade);
    }

    /// Ingest a packed batch, oldest first (the word-level counterpart
    /// of [`EhCount::push_bit`]). Zero runs — merged across whole words
    /// by `trailing_zeros` scanning — advance `pos` in one addition;
    /// expiry runs once per 1-bit (immediately before its insertion, so
    /// an expired bucket can never participate in a cascade merge) and
    /// once at the end of the batch. Expiry only pops the globally
    /// oldest bucket while it is out of window, a monotone operation,
    /// so deferring it across a zero run is state-identical to per-bit
    /// pushes.
    pub fn push_words(&mut self, bits: waves_core::bits::BitsRef<'_>) {
        use waves_core::bits::Run;
        bits.scan_runs(|run| match run {
            Run::Zeros(n) => {
                self.pos += n;
                self.last_cascade = 0;
            }
            Run::One => {
                self.pos += 1;
                self.expire();
                self.insert_one();
            }
        });
        self.expire();
    }

    /// [`EhCount::push_bit`] with instrumentation reported into `rec`:
    /// counts pushes, cascade episodes, and total merged bucket pairs,
    /// and feeds each 1-bit's cascade length into the `eh_cascade_len`
    /// histogram — the worst-case-latency distribution the wave's O(1)
    /// bound eliminates.
    pub fn push_bit_recorded<R: waves_obs::Recorder + ?Sized>(&mut self, b: bool, rec: &R) {
        use waves_obs::{HistId, MetricId};
        let merges_before = self.merges;
        self.push_bit(b);
        rec.incr(MetricId::EhPushes, 1);
        if b {
            let cascade = self.last_cascade as u64;
            rec.observe(HistId::EhCascadeLen, cascade);
            if cascade > 0 {
                rec.incr(MetricId::EhCascades, 1);
                rec.incr(MetricId::EhBucketsMerged, self.merges - merges_before);
            }
        }
    }

    fn expire(&mut self) {
        // The globally oldest bucket is at the front of the highest
        // nonempty class (sizes are nondecreasing with age).
        while let Some(j) = self.highest_nonempty() {
            let &ts = self.classes[j].front().expect("nonempty");
            if ts + self.max_window <= self.pos {
                self.classes[j].pop_front();
                self.total -= 1u64 << j;
            } else {
                break;
            }
        }
    }

    fn highest_nonempty(&self) -> Option<usize> {
        (0..self.classes.len())
            .rev()
            .find(|&j| !self.classes[j].is_empty())
    }

    /// Estimate the number of 1's among the last `n <= N` bits: total
    /// size of buckets with timestamp in the window, minus half the
    /// oldest such bucket (which may straddle the window boundary).
    pub fn query(&self, n: u64) -> Result<Estimate, WaveError> {
        if n > self.max_window {
            return Err(WaveError::WindowTooLarge {
                requested: n,
                max: self.max_window,
            });
        }
        let s = if n >= self.pos { 1 } else { self.pos - n + 1 };
        let mut total_in = 0u64;
        let mut oldest: Option<(u64, u64)> = None; // (ts, size)
        for (j, q) in self.classes.iter().enumerate() {
            let size = 1u64 << j;
            for &ts in q {
                if ts >= s {
                    total_in += size;
                    match oldest {
                        Some((ots, _)) if ots <= ts => {}
                        _ => oldest = Some((ts, size)),
                    }
                }
            }
        }
        let Some((_, oldest_size)) = oldest else {
            return Ok(Estimate::exact(0));
        };
        if n >= self.pos || oldest_size == 1 {
            // Either the window covers the whole stream (buckets are
            // complete) or the straddling bucket is a singleton whose
            // timestamp is in the window: exact.
            return Ok(Estimate::exact(total_in));
        }
        // The straddling bucket contributes between 1 and its size;
        // returning the midpoint caps the absolute error at
        // (size - 1)/2, which the m = ceil(1/(2 eps)) invariant turns
        // into a relative error below eps.
        Ok(Estimate::midpoint(total_in - oldest_size + 1, total_in))
    }

    /// Serialize into a compact bit encoding, mirroring the wave
    /// codecs: gamma-coded parameters (`m` stands in for `eps` — it is
    /// the only error-bound quantity the algorithm consults), then per
    /// size class the bucket count and delta-coded timestamps. Cascade
    /// telemetry (`last_cascade` and friends) is *not* state and is not
    /// encoded. Reconstruct with [`EhCount::decode`].
    pub fn encode(&self) -> Vec<u8> {
        use waves_core::codec::{write_deltas, BitWriter};
        let mut w = BitWriter::new();
        w.write_gamma(self.max_window);
        w.write_gamma(self.m as u64);
        w.write_gamma0(self.pos);
        w.write_gamma0(self.classes.len() as u64);
        for q in &self.classes {
            w.write_gamma0(q.len() as u64);
            let ts: Vec<u64> = q.iter().copied().collect();
            write_deltas(&mut w, &ts);
        }
        w.finish()
    }

    /// Reconstruct a histogram from [`EhCount::encode`] output. The
    /// reconstruction answers queries identically to the original and
    /// re-encodes to the same bytes; cascade telemetry restarts at 0.
    /// Corrupt input yields `Err`, never a panic or an inconsistent
    /// structure.
    pub fn decode(bytes: &[u8]) -> Result<Self, waves_core::codec::CodecError> {
        use waves_core::codec::{read_deltas, BitReader, CodecError};
        let mut r = BitReader::new(bytes);
        let max_window = r.read_gamma()?;
        let m = r.read_gamma()?;
        if m > 1 << 32 {
            return Err(CodecError::Corrupt("bad m"));
        }
        // eps = 1/(2m) inverts m = ceil(1/(2 eps)) exactly, so the
        // decoded histogram merges on the same thresholds.
        let mut eh = EhCount::builder()
            .max_window(max_window)
            .eps(1.0 / (2.0 * m as f64))
            .build()?;
        debug_assert_eq!(eh.m as u64, m);
        eh.pos = r.read_gamma0()?;
        if eh.pos > 1 << 62 {
            return Err(CodecError::Corrupt("counters inconsistent"));
        }
        let num_classes = r.read_gamma0()? as usize;
        if num_classes > 64 {
            return Err(CodecError::Corrupt("too many classes"));
        }
        // Buckets age with class index: everything in class j + 1 is
        // strictly older than everything in class j.
        let mut newest_allowed = eh.pos;
        for j in 0..num_classes {
            let len = r.read_gamma0()? as usize;
            if len > eh.m + 1 {
                return Err(CodecError::Corrupt("class overfull"));
            }
            let ts = read_deltas(&mut r, len)?;
            let mut prev = 0u64;
            for &t in &ts {
                if t == 0 || t > eh.pos || t <= prev {
                    return Err(CodecError::Corrupt("timestamps not increasing"));
                }
                if t + max_window <= eh.pos {
                    return Err(CodecError::Corrupt("bucket already expired"));
                }
                prev = t;
            }
            if let (Some(&newest), true) = (ts.last(), j > 0) {
                if newest >= newest_allowed {
                    return Err(CodecError::Corrupt("classes out of age order"));
                }
            }
            if let Some(&oldest) = ts.first() {
                newest_allowed = oldest;
            }
            let size = 1u64
                .checked_shl(j as u32)
                .ok_or(CodecError::Corrupt("class overflow"))?;
            eh.total = (len as u64)
                .checked_mul(size)
                .and_then(|add| eh.total.checked_add(add))
                .ok_or(CodecError::Corrupt("total overflow"))?;
            eh.classes.push(ts.into_iter().collect());
        }
        Ok(eh)
    }

    /// Space accounting under the same conventions as the waves.
    pub fn space_report(&self) -> SpaceReport {
        let entries = self.buckets();
        let resident_bytes = std::mem::size_of::<Self>()
            + self
                .classes
                .iter()
                .map(|q| q.capacity() * std::mem::size_of::<u64>())
                .sum::<usize>();
        let mut all_ts: Vec<u64> = self
            .classes
            .iter()
            .flat_map(|q| q.iter().copied())
            .collect();
        all_ts.sort_unstable();
        let counter_bits = 64 - (2 * self.max_window - 1).leading_zeros() as u64;
        let synopsis_bits = 2 * counter_bits
            + delta_coded_bits(all_ts)
            + entries as u64 * elias_gamma_bits(self.classes.len() as u64 + 1);
        SpaceReport {
            resident_bytes,
            synopsis_bits,
            entries,
        }
    }
}

fn is_front_oldest(q: &VecDeque<u64>) -> bool {
    q.iter().zip(q.iter().skip(1)).all(|(a, b)| a <= b)
}

impl waves_core::traits::Synopsis for EhCount {
    fn name(&self) -> &'static str {
        "eh"
    }
    fn max_window(&self) -> u64 {
        self.max_window
    }
    fn space_report(&self) -> SpaceReport {
        EhCount::space_report(self)
    }
}

impl BitSynopsis for EhCount {
    fn push_bit(&mut self, b: bool) {
        EhCount::push_bit(self, b)
    }
    fn push_words(&mut self, bits: waves_core::bits::BitsRef<'_>) {
        EhCount::push_words(self, bits)
    }
    fn query_window(&self, n: u64) -> Result<Estimate, WaveError> {
        self.query(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waves_core::exact::ExactCount;

    fn lcg_bits(seed: u64, len: usize, m: u64, lt: u64) -> Vec<bool> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % m < lt
            })
            .collect()
    }

    #[test]
    fn whole_stream_exact() {
        let mut eh = EhCount::new(100, 0.25).unwrap();
        for b in [true, false, true, true] {
            eh.push_bit(b);
        }
        assert_eq!(eh.query(100).unwrap(), Estimate::exact(3));
    }

    #[test]
    fn error_bound_holds() {
        for &(eps, n_max) in &[(0.5, 64u64), (0.25, 128), (0.1, 256)] {
            let mut eh = EhCount::new(n_max, eps).unwrap();
            let mut oracle = ExactCount::new(n_max);
            for b in lcg_bits(1, 6000, 10, 4) {
                eh.push_bit(b);
                oracle.push_bit(b);
                let actual = oracle.query(n_max);
                let est = eh.query(n_max).unwrap();
                assert!(est.brackets(actual), "[{},{}] vs {actual}", est.lo, est.hi);
                assert!(
                    est.relative_error(actual) <= eps + 1e-9,
                    "eps={eps} actual={actual} est={}",
                    est.value
                );
            }
        }
    }

    #[test]
    fn error_bound_smaller_windows() {
        let (eps, n_max) = (0.2, 128u64);
        let mut eh = EhCount::new(n_max, eps).unwrap();
        let mut oracle = ExactCount::new(n_max);
        for (i, b) in lcg_bits(9, 4000, 3, 1).into_iter().enumerate() {
            eh.push_bit(b);
            oracle.push_bit(b);
            if i % 29 == 0 {
                for n in [5u64, 40, 128] {
                    let actual = oracle.query(n);
                    let est = eh.query(n).unwrap();
                    assert!(
                        est.relative_error(actual) <= eps + 1e-9,
                        "i={i} n={n} actual={actual} est={:?}",
                        est
                    );
                }
            }
        }
    }

    #[test]
    fn cascades_happen_on_all_ones() {
        let mut eh = EhCount::new(1 << 16, 0.1).unwrap();
        for _ in 0..100_000 {
            eh.push_bit(true);
        }
        // On an all-ones stream, long cascades are inevitable.
        assert!(eh.max_cascade() >= 4, "max cascade {}", eh.max_cascade());
        assert!(eh.merges() > 0);
    }

    #[test]
    fn wave_never_cascades_comparison_stat() {
        // The structural fact behind E4: EH max cascade grows with N,
        // while the wave touches exactly one level per item.
        let mut eh_small = EhCount::new(1 << 8, 0.1).unwrap();
        let mut eh_large = EhCount::new(1 << 16, 0.1).unwrap();
        for _ in 0..1 << 17 {
            eh_small.push_bit(true);
            eh_large.push_bit(true);
        }
        assert!(eh_large.max_cascade() > eh_small.max_cascade());
    }

    #[test]
    fn bucket_counts_bounded() {
        let eps = 0.125;
        let n_max = 1u64 << 12;
        let mut eh = EhCount::new(n_max, eps).unwrap();
        for b in lcg_bits(3, 50_000, 2, 1) {
            eh.push_bit(b);
        }
        let m = (1.0 / (2.0 * eps)).ceil() as usize;
        for (j, q) in eh.classes.iter().enumerate() {
            assert!(q.len() <= m + 1, "class {j} has {} buckets", q.len());
        }
    }

    #[test]
    fn cascade_counter_resets_on_zero_bits() {
        let mut eh = EhCount::new(1 << 10, 0.1).unwrap();
        for _ in 0..200 {
            eh.push_bit(true);
        }
        assert!(eh.last_cascade() <= eh.max_cascade());
        eh.push_bit(false);
        assert_eq!(eh.last_cascade(), 0, "zero bits do not merge");
        assert!(eh.max_cascade() > 0, "history preserved");
    }

    #[test]
    fn sub_window_with_straddling_oldest() {
        // A window boundary cutting through a large old bucket still
        // yields a bracketing interval.
        let mut eh = EhCount::new(256, 0.25).unwrap();
        let mut oracle = ExactCount::new(256);
        for _ in 0..200 {
            eh.push_bit(true);
            oracle.push_bit(true);
        }
        for n in [3u64, 17, 100, 199, 200] {
            let est = eh.query(n).unwrap();
            assert!(est.brackets(oracle.query(n)), "n={n}: {est:?}");
        }
    }

    #[test]
    fn recorded_cascade_stats_match_internal_counters() {
        let reg = waves_obs::MetricsRegistry::new();
        let mut eh = EhCount::new(1 << 12, 0.1).unwrap();
        for b in lcg_bits(7, 20_000, 2, 1) {
            eh.push_bit_recorded(b, &reg);
        }
        use waves_obs::MetricId as M;
        assert_eq!(reg.counter(M::EhPushes), 20_000);
        assert_eq!(reg.counter(M::EhBucketsMerged), eh.merges());
        assert!(reg.counter(M::EhCascades) > 0);
        let hist = reg
            .snapshot()
            .hist("eh_cascade_len")
            .cloned()
            .expect("well-known histogram");
        // One sample per 1-bit; its max is the stream's max cascade.
        assert_eq!(hist.max, eh.max_cascade() as u64);
    }

    #[test]
    fn expiry_empties_structure() {
        let mut eh = EhCount::new(32, 0.25).unwrap();
        for _ in 0..100 {
            eh.push_bit(true);
        }
        for _ in 0..40 {
            eh.push_bit(false);
        }
        assert_eq!(eh.query(32).unwrap(), Estimate::exact(0));
        assert_eq!(eh.buckets(), 0);
    }
}
