//! Vendored stand-in for the `rand` 0.8 API subset this workspace uses.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors a std-only implementation of exactly the surface it
//! consumes: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ (public domain, Blackman & Vigna)
//! seeded through SplitMix64 — not the upstream ChaCha12 `StdRng`, so
//! seeded sequences differ from real `rand`, but every consumer in this
//! workspace treats seeds as opaque reproducibility handles rather than
//! cross-library contracts.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a small seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A distribution that can be sampled with any [`RngCore`].
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over all values for
/// integers and `bool`, uniform in `[0, 1)` for floats.
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<i128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        Distribution::<u128>::sample(&Standard, rng) as i128
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform draw from `[0, span)` without modulo bias.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Reject draws from the tail that would wrap unevenly.
    let zone = ((u128::from(u64::MAX) + 1) / u128::from(span)) * u128::from(span);
    loop {
        let v = rng.next_u64();
        if u128::from(v) < zone {
            return v % span;
        }
    }
}

#[inline]
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span >= 1);
    if span.is_power_of_two() {
        return Distribution::<u128>::sample(&Standard, rng) & (span - 1);
    }
    let hi_zone = u128::MAX - u128::MAX % span;
    loop {
        let v = Distribution::<u128>::sample(&Standard, rng);
        if v < hi_zone {
            return v % span;
        }
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty, $via:ident);* $(;)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as $wide;
                self.start.wrapping_add($via(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide);
                if span == <$wide>::MAX {
                    return Standard.sample(rng);
                }
                lo.wrapping_add($via(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, uniform_u64;
    u16 => u64, uniform_u64;
    u32 => u64, uniform_u64;
    u64 => u64, uniform_u64;
    usize => u64, uniform_u64;
    i8 => u64, uniform_u64;
    i16 => u64, uniform_u64;
    i32 => u64, uniform_u64;
    i64 => u64, uniform_u64;
    isize => u64, uniform_u64;
    u128 => u128, uniform_u128;
    i128 => u128, uniform_u128;
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    #[inline]
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        let unit: f64 = Standard.sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice shuffling and selection.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Choose `amount` distinct elements, in selection order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            // Partial Fisher–Yates over an index table: the first
            // `amount` slots end up holding a uniform sample without
            // replacement.
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = (i..self.len()).sample_single(rng);
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3i32..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let big = rng.gen_range(1u128..=u128::from(u32::MAX));
            assert!(big >= 1 && big <= u128::from(u32::MAX));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
        assert!([0u32; 0].choose(&mut rng).is_none());
        assert_eq!([42u32].choose(&mut rng), Some(&42));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dynish<R: super::RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(6);
        assert!(takes_dynish(&mut rng) < 100);
    }
}
