//! Schedule execution: build the stack a schedule describes, run every
//! step, and check each observable answer against three oracles.
//!
//! Per key the harness maintains:
//!
//! - [`ExactCount`] — the O(N) ring-buffer ground truth;
//! - a shadow [`DetWave`] — the engine must agree with it *bit for
//!   bit*, the workspace's standing differential convention;
//! - an [`EhCount`] — Datar et al.'s independent baseline, which must
//!   agree with the truth (and hence the wave) within ε.
//!
//! Monitor schedules additionally run a continuous-monitoring overlay
//! ([`PushParty`]s plus a [`MonitorReferee`]): every referee answer is
//! checked against per-party exact ring buffers, a pull-mode combine
//! over the parties' live waves, and the ε+slack accuracy contract, and
//! every push re-checks the per-party drift budget.
//!
//! Every trace line is a pure function of the schedule, so the FNV hash
//! over the trace ([`RunReport::trace_hash`]) is the replay-identity
//! witness: equal seeds ⇒ equal hashes. Timing-dependent facts (error
//! kinds under injected faults, queue depths) never enter the trace.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use waves_cluster::{ClusterClient, ClusterConfig};
use waves_core::{Bits, DetWave, Estimate, ExactCount, WaveError};
use waves_distributed::{combine_estimates, MonitorConfig, MonitorReferee, PushParty};
use waves_eh::EhCount;
use waves_engine::{Engine, EngineConfig, IngestRequest};
use waves_net::{ChaosProxy, Client, ClientConfig, RetryPolicy, Server, ServerConfig};
use waves_obs::{Fanout, MetricsRegistry, SpanRecorder};
use waves_store::{scratch_dir, wal, PersistConfig, SyncPolicy};

use crate::schedule::{FaultSpec, Schedule, SimConfig, Step};

/// A chaos exchange must resolve (answer or typed error) within this
/// budget, proxy teardown included.
pub const HANG_BUDGET: Duration = Duration::from_secs(5);

/// An oracle (or harness-contract) violation at one step of a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub seed: u64,
    /// Index into `schedule.steps`.
    pub step: usize,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DST FAILURE seed={} step={}: {}",
            self.seed, self.step, self.detail
        )
    }
}

impl std::error::Error for Violation {}

/// What a successful run observed.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Steps executed.
    pub steps: usize,
    /// Oracle comparisons performed (queries, snapshots, chaos ops).
    pub checks: u64,
    /// FNV-1a over the event trace — the replay-identity witness.
    pub trace_hash: u64,
    /// One line per step, fully deterministic per schedule.
    pub trace: Vec<String>,
}

/// A failing run plus its greedily minimized witness.
#[derive(Debug, Clone)]
pub struct Failure {
    pub violation: Violation,
    /// Subsequence of the original steps that still fails; 1-minimal
    /// under single-step removal.
    pub minimized: Schedule,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.violation)?;
        writeln!(
            f,
            "minimized schedule ({} steps, replay: {}):",
            self.minimized.steps.len(),
            self.minimized.replay_hint()
        )?;
        for (i, step) in self.minimized.steps.iter().enumerate() {
            writeln!(f, "  [{i}] {step}")?;
        }
        Ok(())
    }
}

/// Run the schedule derived from `seed` (see [`Schedule::from_seed`]).
pub fn run_seed(seed: u64) -> Result<RunReport, Violation> {
    run(&Schedule::from_seed(seed))
}

/// Execute a schedule against a freshly built stack. Persistent
/// schedules use a scratch directory that is removed afterwards either
/// way.
pub fn run(schedule: &Schedule) -> Result<RunReport, Violation> {
    let root = schedule
        .cfg
        .persist
        .then(|| scratch_dir(&format!("dst-seed-{}", schedule.seed)));
    let result = run_in(schedule, root.as_deref());
    if let Some(root) = root {
        let _ = fs::remove_dir_all(&root);
    }
    result
}

/// Run; on violation, shrink the schedule to a 1-minimal failing
/// subsequence (re-running candidate subsequences) and report both the
/// original violation and the minimized witness.
pub fn run_or_minimize(schedule: &Schedule) -> Result<RunReport, Box<Failure>> {
    match run(schedule) {
        Ok(report) => Ok(report),
        Err(violation) => {
            let minimized = minimize(schedule);
            Err(Box::new(Failure {
                violation,
                minimized,
            }))
        }
    }
}

/// Greedy step-removal shrinking of a failing schedule: keeps deleting
/// chunks of steps while some violation (not necessarily the original
/// one) still fires. The result is a subsequence of the input.
pub fn minimize(schedule: &Schedule) -> Schedule {
    let steps = proptest::shrink_elements(&schedule.steps, |subset| {
        run(&Schedule {
            seed: schedule.seed,
            cfg: schedule.cfg,
            steps: subset.to_vec(),
        })
        .is_err()
    });
    Schedule {
        seed: schedule.seed,
        cfg: schedule.cfg,
        steps,
    }
}

fn run_in(schedule: &Schedule, root: Option<&Path>) -> Result<RunReport, Violation> {
    let mut sim = Sim::start(schedule, root).map_err(|detail| Violation {
        seed: schedule.seed,
        step: 0,
        detail,
    })?;
    for (idx, step) in schedule.steps.iter().enumerate() {
        sim.execute(step).map_err(|detail| Violation {
            seed: schedule.seed,
            step: idx,
            detail,
        })?;
    }
    Ok(RunReport {
        steps: schedule.steps.len(),
        checks: sim.checks,
        trace_hash: sim.trace.hash,
        trace: sim.trace.lines,
    })
}

/// Full telemetry attached to every simulated stack: the metrics
/// registry plus the span ring, which enables end-to-end tracing.
/// Running the sim with tracing *live* is deliberate — it proves the
/// telemetry plane is invisible to replay identity, because the trace
/// hash covers only engine/store observables and never span timings.
type Telemetry = Fanout<MetricsRegistry, SpanRecorder>;

fn telemetry() -> Arc<Telemetry> {
    Arc::new(Fanout(MetricsRegistry::new(), SpanRecorder::new()))
}

/// The execution surface: in-process engine, loopback server+client, or
/// a multi-node cluster behind a `waves-cluster` routing client.
enum Backend {
    Direct(Engine<DetWave, Telemetry>),
    Tcp {
        server: Server<Telemetry>,
        client: Client<Telemetry>,
    },
    Cluster {
        /// `None` while a node is killed; its slot keeps the index ↔
        /// ring identity stable.
        servers: Vec<Option<Server<Telemetry>>>,
        client: Box<ClusterClient<Telemetry>>,
        /// Real listening address per node, restored on rejoin after a
        /// partition (a killed node rejoins on a fresh port).
        addrs: Vec<SocketAddr>,
        /// Downed with state lost (killed) vs state preserved
        /// (partitioned) — decides what a rejoin must re-seed.
        killed: Vec<bool>,
        partitioned: Vec<bool>,
    },
}

/// Where the routing client is pointed for a downed node: loopback port
/// 1 is privileged and never listened on, so dials fail fast and
/// deterministically with `ConnectionRefused` — and a dead node's real
/// port can never be recycled under the client by a later fresh server.
fn unreachable_addr() -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], 1))
}

struct Sim {
    cfg: SimConfig,
    backend: Option<Backend>,
    oracles: Oracles,
    /// Continuous-monitoring overlay (monitor schedules only). Lives
    /// harness-side and is deliberately untouched by restarts/crashes:
    /// the parties and referee model long-lived monitoring processes
    /// independent of the serving stack under fault injection.
    monitor: Option<MonitorPlane>,
    root: Option<PathBuf>,
    /// Acknowledged batches covered by the newest on-disk checkpoint.
    ckpt_batches: usize,
    /// End offset of each acknowledged WAL record in the live segment
    /// (persist mode; reset when a checkpoint rotates the segment).
    seg_ends: Vec<u64>,
    trace: Trace,
    checks: u64,
}

impl Sim {
    fn start(schedule: &Schedule, root: Option<&Path>) -> Result<Sim, String> {
        let cfg = schedule.cfg;
        if cfg.persist && cfg.num_shards != 1 {
            return Err("harness: persistent schedules require exactly one shard".into());
        }
        let monitor = if cfg.monitor_parties > 0 {
            Some(MonitorPlane::new(&cfg)?)
        } else {
            None
        };
        Ok(Sim {
            cfg,
            backend: Some(start_backend(&cfg, root)?),
            oracles: Oracles::new(&cfg),
            monitor,
            root: root.map(Path::to_path_buf),
            ckpt_batches: 0,
            seg_ends: Vec::new(),
            trace: Trace::new(),
            checks: 0,
        })
    }

    fn backend(&mut self) -> &mut Backend {
        self.backend.as_mut().expect("backend live between steps")
    }

    fn execute(&mut self, step: &Step) -> Result<(), String> {
        match step {
            Step::Ingest { batch, packed } => self.do_ingest(batch, *packed),
            Step::Query { key, window } => self.do_query(*key, *window),
            Step::Flush => self.do_flush(),
            Step::Snapshot => self.do_snapshot(),
            Step::Checkpoint => self.do_checkpoint(),
            Step::Restart => self.do_restart(),
            Step::Crash { wal_cut_permille } => self.do_crash(*wal_cut_permille),
            Step::Chaos { fault, key, window } => self.do_chaos(*fault, *key, *window),
            Step::NodeKill { node } => self.do_node_kill(*node),
            Step::Partition { node } => self.do_partition(*node),
            Step::Rejoin { node } => self.do_rejoin(*node),
            Step::MonitorPush { party, bits } => self.do_monitor_push(*party, bits),
            Step::MonitorQuery => self.do_monitor_query(),
        }
    }

    fn do_ingest(&mut self, batch: &[(u64, Vec<bool>)], packed: bool) -> Result<(), String> {
        if batch.is_empty() {
            self.trace
                .push(format!("ingest events=0 items=0 packed={packed}"));
            return Ok(());
        }
        if let Backend::Cluster { client, .. } = self.backend() {
            let mut deferred = 0usize;
            for (key, bits) in batch {
                match client.ingest(*key, &bits[..]) {
                    Ok(()) => {}
                    // Every replica of this key unreachable — possible
                    // only in shrunk schedules that dropped a rejoin.
                    // The bits are safe in the client's shadow and
                    // re-ship through anti-entropy, so this is a
                    // deferral, not a loss.
                    Err(WaveError::Io(_)) | Err(WaveError::Timeout { .. }) => deferred += 1,
                    Err(e) => return Err(format!("cluster ingest rejected: {e}")),
                }
            }
            // Ship every primary's synopsis to its followers after each
            // batch, so any replica that answers a later query answers
            // with current state.
            client.replicate_all();
            self.oracles.apply(batch);
            let items: usize = batch.iter().map(|(_, bits)| bits.len()).sum();
            self.trace.push(format!(
                "ingest events={} items={items} packed={packed} deferred={deferred}",
                batch.len()
            ));
            return Ok(());
        }
        // Word-packed form of the batch: what the packed path sends and
        // what the WAL encodes regardless of the ingest currency.
        let words: Vec<(u64, Bits)> = batch
            .iter()
            .map(|(k, bits)| (*k, Bits::from_bools(bits)))
            .collect();
        if packed {
            match self.backend() {
                Backend::Direct(engine) => engine
                    .ingest(IngestRequest::batch(words.clone()))
                    .map_err(|e| format!("ingest rejected by engine: {e}"))?,
                Backend::Tcp { client, .. } => {
                    client
                        .ingest(IngestRequest::batch(words.clone()))
                        .map_err(|e| format!("ingest failed over tcp: {e}"))?
                }
                Backend::Cluster { .. } => unreachable!("cluster ingest handled above"),
            }
        } else {
            // The deprecated per-bit shims, kept under test on purpose:
            // half of all seed-derived ingests exercise them until they
            // are removed.
            #[allow(deprecated)]
            match self.backend() {
                Backend::Direct(engine) => engine
                    .ingest_batch(batch)
                    .map_err(|e| format!("ingest rejected by engine: {e}"))?,
                Backend::Tcp { client, .. } => client
                    .ingest_batch(batch)
                    .map_err(|e| format!("ingest failed over tcp: {e}"))?,
                Backend::Cluster { .. } => unreachable!("cluster ingest handled above"),
            }
        }
        if self.cfg.persist {
            // One WAL record per acknowledged batch (single shard, FIFO):
            // track its end offset so a crash cut classifies survivors.
            let rec_len = wal::frame_record(&wal::encode_batch_payload(&words)).len() as u64;
            let end = self
                .seg_ends
                .last()
                .copied()
                .unwrap_or(wal::SEGMENT_HEADER_LEN)
                + rec_len;
            self.seg_ends.push(end);
        }
        self.oracles.apply(batch);
        let items: usize = batch.iter().map(|(_, bits)| bits.len()).sum();
        self.trace.push(format!(
            "ingest events={} items={items} packed={packed}",
            batch.len()
        ));
        Ok(())
    }

    fn do_query(&mut self, key: u64, window: u64) -> Result<(), String> {
        let got = match self.backend() {
            Backend::Direct(engine) => engine.query(key, window),
            Backend::Tcp { client, .. } => client.query(key, window),
            Backend::Cluster { client, .. } => match client.query(key, window) {
                // Every replica of this key unreachable — possible only
                // in shrunk schedules that dropped a rejoin. There is no
                // answer to check; the outcome is deterministic given
                // the schedule's down-set, so trace and move on.
                Err(WaveError::Io(_)) | Err(WaveError::Timeout { .. }) => {
                    self.trace
                        .push(format!("query key={key} w={window} -> unreachable"));
                    return Ok(());
                }
                other => other,
            },
        };
        self.checks += 1;
        let line = self.oracles.check_query(key, window, &got)?;
        self.trace.push(line);
        Ok(())
    }

    fn do_flush(&mut self) -> Result<(), String> {
        match self.backend() {
            Backend::Direct(engine) => engine.flush(),
            Backend::Tcp { client, .. } => client
                .flush()
                .map_err(|e| format!("flush failed over tcp: {e}"))?,
            // Downed nodes hold no open connection, so a flush failure
            // here is a live connection breaking mid-exchange — treat
            // it as the drop it is; anything else is a real violation.
            Backend::Cluster { client, .. } => match client.flush() {
                Ok(()) | Err(WaveError::Io(_)) | Err(WaveError::Timeout { .. }) => {}
                Err(e) => return Err(format!("cluster flush: {e}")),
            },
        }
        self.trace.push("flush".to_string());
        Ok(())
    }

    fn do_snapshot(&mut self) -> Result<(), String> {
        let snap = match self.backend() {
            Backend::Direct(engine) => engine.snapshot(),
            Backend::Tcp { client, .. } => client
                .snapshot()
                .map_err(|e| format!("snapshot failed over tcp: {e}"))?,
            Backend::Cluster { .. } => {
                // A cluster spreads keys over nodes; the single-engine
                // live-key count has no cluster-wide meaning.
                return Err("harness: snapshot step requires a single-backend schedule".into());
            }
        };
        self.checks += 1;
        let want = self.oracles.exact.len();
        if snap.keys() != want {
            return Err(format!(
                "snapshot reports {} live keys, oracle has {want}",
                snap.keys()
            ));
        }
        self.trace.push(format!("snapshot keys={want}"));
        Ok(())
    }

    fn do_checkpoint(&mut self) -> Result<(), String> {
        match self.backend() {
            Backend::Direct(engine) => engine.checkpoint(),
            Backend::Tcp { server, .. } => server.engine().checkpoint(),
            Backend::Cluster { .. } => {
                return Err("harness: checkpoint step requires a single-backend schedule".into());
            }
        }
        .map_err(|e| format!("checkpoint failed: {e}"))?;
        if self.cfg.persist {
            // The checkpoint travels each shard's FIFO, so it covers
            // every batch acknowledged so far and rotates the segment.
            self.ckpt_batches = self.oracles.history.len();
            self.seg_ends.clear();
        }
        self.trace
            .push(format!("checkpoint batches={}", self.ckpt_batches));
        Ok(())
    }

    fn do_restart(&mut self) -> Result<(), String> {
        self.stop_backend(false);
        if self.cfg.persist {
            // Clean shutdown wrote a final checkpoint covering every
            // acknowledged batch and rotated the WAL.
            self.ckpt_batches = self.oracles.history.len();
            self.seg_ends.clear();
        } else {
            self.oracles.rebuild(0);
        }
        self.backend = Some(start_backend(&self.cfg, self.root.as_deref())?);
        self.trace
            .push(format!("restart acked={}", self.oracles.history.len()));
        Ok(())
    }

    fn do_crash(&mut self, permille: u16) -> Result<(), String> {
        self.stop_backend(true);
        let mut cut = 0u64;
        let mut survivors = 0usize;
        if let Some(root) = &self.root {
            let shard_dir = root.join("shard-0");
            let seg = newest_segment(&shard_dir)?;
            let len = fs::metadata(&seg)
                .map_err(|e| format!("harness: stat {}: {e}", seg.display()))?
                .len();
            cut = len * u64::from(permille.min(1000)) / 1000;
            let f = fs::OpenOptions::new()
                .write(true)
                .open(&seg)
                .map_err(|e| format!("harness: open {}: {e}", seg.display()))?;
            f.set_len(cut)
                .map_err(|e| format!("harness: truncate {}: {e}", seg.display()))?;
            drop(f);
            survivors = self.seg_ends.iter().filter(|&&e| e <= cut).count();
            self.seg_ends.truncate(survivors);
        }
        if self.cfg.persist {
            self.oracles.rebuild(self.ckpt_batches + survivors);
        } else {
            self.oracles.rebuild(0);
        }
        self.backend = Some(start_backend(&self.cfg, self.root.as_deref())?);
        self.trace.push(format!(
            "crash cut={cut} survivors={survivors} acked={}",
            self.oracles.history.len()
        ));
        Ok(())
    }

    fn do_chaos(&mut self, spec: FaultSpec, key: u64, window: u64) -> Result<(), String> {
        let addr = match self.backend() {
            Backend::Tcp { server, .. } => server.local_addr(),
            Backend::Direct(_) | Backend::Cluster { .. } => {
                return Err("harness: chaos step requires a tcp schedule".into())
            }
        };
        let proxy = ChaosProxy::start(addr, spec.to_fault())
            .map_err(|e| format!("harness: chaos proxy: {e}"))?;
        // Throwaway client with tight budgets: delays must surface as
        // timeouts quickly, and nothing here is retried.
        let chaos_cfg = ClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(30),
            write_timeout: Duration::from_millis(500),
            retry: RetryPolicy::none(),
        };
        let t0 = Instant::now();
        let outcome = Client::connect_with(proxy.local_addr(), chaos_cfg)
            .and_then(|mut c| c.query(key, window));
        drop(proxy);
        let elapsed = t0.elapsed();
        if elapsed > HANG_BUDGET {
            return Err(format!(
                "chaos op exceeded the {HANG_BUDGET:?} hang budget: {elapsed:?}"
            ));
        }
        self.checks += 1;
        // The contract under an injected fault: either the correct
        // answer (the fault missed the exchange) or a typed transport
        // error — never a wrong answer, never a hang.
        match outcome {
            Ok(est) => {
                self.oracles.check_query(key, window, &Ok(est))?;
            }
            Err(WaveError::UnknownKey { .. }) => {
                if self.oracles.exact.contains_key(&key) {
                    return Err(format!(
                        "chaos query returned UnknownKey for known key {key}"
                    ));
                }
            }
            Err(WaveError::Io(_)) | Err(WaveError::Timeout { .. }) => {}
            Err(other) => return Err(format!("chaos query: unexpected error kind {other:?}")),
        }
        // Trace records only the fault, never the timing-dependent
        // outcome kind — that would break replay-identity.
        self.trace.push(format!("chaos fault={spec} -> checked"));
        Ok(())
    }

    /// Tear the stack down, cleanly or as a crash (skipping the final
    /// shutdown checkpoint so the WAL prefix is what recovery sees).
    fn stop_backend(&mut self, crash: bool) {
        match self.backend.take() {
            Some(Backend::Direct(engine)) => {
                if crash {
                    engine.crash_on_drop();
                }
                drop(engine);
            }
            Some(Backend::Tcp { server, client }) => {
                if crash {
                    server.engine().crash_on_drop();
                }
                drop(client);
                drop(server);
            }
            Some(Backend::Cluster {
                servers, client, ..
            }) => {
                // Clusters never persist, so crash vs clean is moot.
                drop(client);
                for server in servers.into_iter().flatten() {
                    server.shutdown();
                }
            }
            None => {}
        }
    }

    fn do_node_kill(&mut self, node: usize) -> Result<(), String> {
        let Backend::Cluster {
            servers,
            client,
            killed,
            partitioned,
            ..
        } = self.backend()
        else {
            return Err("harness: node-kill step requires a cluster schedule".into());
        };
        if node >= servers.len() {
            return Err(format!("harness: node-kill node={node}: no such node"));
        }
        if let Some(server) = servers[node].take() {
            server.shutdown();
        }
        client.set_node_addr(node, unreachable_addr());
        killed[node] = true;
        partitioned[node] = false;
        self.trace.push(format!("node-kill node={node}"));
        Ok(())
    }

    fn do_partition(&mut self, node: usize) -> Result<(), String> {
        let Backend::Cluster {
            servers,
            client,
            killed,
            partitioned,
            ..
        } = self.backend()
        else {
            return Err("harness: partition step requires a cluster schedule".into());
        };
        if node >= servers.len() {
            return Err(format!("harness: partition node={node}: no such node"));
        }
        // A killed node is already unreachable; partitioning it again
        // must not resurrect it as "state preserved".
        if !killed[node] && !partitioned[node] {
            client.set_node_addr(node, unreachable_addr());
            partitioned[node] = true;
        }
        self.trace.push(format!("partition node={node}"));
        Ok(())
    }

    fn do_rejoin(&mut self, node: usize) -> Result<(), String> {
        let ecfg = engine_cfg(&self.cfg, None);
        let Backend::Cluster {
            servers,
            client,
            addrs,
            killed,
            partitioned,
        } = self.backend()
        else {
            return Err("harness: rejoin step requires a cluster schedule".into());
        };
        if node >= servers.len() {
            return Err(format!("harness: rejoin node={node}: no such node"));
        }
        let fresh = killed[node];
        if killed[node] {
            // The node lost its state with its process: restart it
            // empty on a fresh port and declare every key routed there
            // stale, so the next connection re-seeds it key by key
            // through anti-entropy.
            let server = Server::start_recorded(
                "127.0.0.1:0",
                ServerConfig {
                    engine: ecfg,
                    read_timeout: None,
                    ..Default::default()
                },
                telemetry(),
            )
            .map_err(|e| format!("harness: rejoin server start: {e}"))?;
            addrs[node] = server.local_addr();
            servers[node] = Some(server);
            client.set_node_addr(node, addrs[node]);
            client.mark_node_stale(node);
            killed[node] = false;
        } else if partitioned[node] {
            // State survived; just restore reachability. Shipments
            // missed during the partition are pending and re-ship on
            // the next connection.
            client.set_node_addr(node, addrs[node]);
            partitioned[node] = false;
        }
        // Rejoining an up node is a no-op (keeps shrinking sound); the
        // `fresh` flag is a pure function of the schedule prefix.
        self.trace.push(format!("rejoin node={node} fresh={fresh}"));
        Ok(())
    }

    fn do_monitor_push(&mut self, party: u64, bits: &[bool]) -> Result<(), String> {
        let Some(m) = self.monitor.as_mut() else {
            return Err("harness: monitor-push step requires a monitor schedule".into());
        };
        let idx = party as usize;
        if idx >= m.parties.len() {
            return Err(format!(
                "harness: monitor-push party={party}: no such party"
            ));
        }
        for &b in bits {
            m.exact[idx].push_bit(b);
        }
        let delta = m.parties[idx].push_bits(bits);
        let shipped = delta.is_some();
        if let Some(delta) = &delta {
            m.referee
                .install(delta)
                .map_err(|e| format!("monitor referee rejected a live delta: {e:?}"))?;
        }
        // The slack account must settle below budget after *every*
        // batch — this is the oracle that catches threshold off-by-ones
        // (see the planted `dst_mutation` in `PushParty::settle`).
        let drift = m.parties[idx].unshipped_drift();
        let budget = m.parties[idx].slack_budget();
        if drift > budget + 1e-9 {
            return Err(format!(
                "monitor party {party}: unshipped drift {drift} exceeds slack budget {budget}"
            ));
        }
        let seq = m.parties[idx].seq();
        self.checks += 1;
        self.trace.push(format!(
            "monitor-push party={party} bits={} shipped={shipped} seq={seq}",
            bits.len()
        ));
        Ok(())
    }

    fn do_monitor_query(&mut self) -> Result<(), String> {
        let Some(m) = self.monitor.as_ref() else {
            return Err("harness: monitor-query step requires a monitor schedule".into());
        };
        // Three oracles for the continuously valid answer: the exact
        // ring-buffer bracket, the pull-mode referee over the same bit
        // sequence, and the ε+slack accuracy contract.
        let push = m.referee.combined();
        let pull = combine_estimates(m.parties.iter().map(|p| p.local().query_max()));
        let truth: u64 = m.exact.iter().map(|e| e.query(m.cfg.max_window)).sum();
        let slack = m.cfg.slack_total();
        let contract = m.cfg.eps_synopsis() * truth as f64 + slack;
        if (push.value - truth as f64).abs() > contract + 1e-6 {
            return Err(format!(
                "monitor-query: push answer {} off truth {truth} beyond eps_syn*truth+slack={contract}",
                push.value
            ));
        }
        if (push.value - pull.value).abs() > slack + 1e-6 {
            return Err(format!(
                "monitor-query: push {} and pull {} disagree beyond slack {slack}",
                push.value, pull.value
            ));
        }
        let drifts: f64 = m.parties.iter().map(|p| p.unshipped_drift()).sum();
        if drifts > slack + 1e-9 {
            return Err(format!(
                "monitor-query: total unshipped drift {drifts} exceeds slack pool {slack}"
            ));
        }
        self.checks += 1;
        self.trace.push(format!(
            "monitor-query push={} pull={} truth={truth}",
            push.value, pull.value
        ));
        Ok(())
    }
}

/// The continuous-monitoring overlay: push parties, their exact
/// ground-truth ring buffers, and the referee folding shipped deltas.
struct MonitorPlane {
    cfg: MonitorConfig,
    parties: Vec<PushParty>,
    exact: Vec<ExactCount>,
    referee: MonitorReferee,
}

impl MonitorPlane {
    fn new(cfg: &SimConfig) -> Result<MonitorPlane, String> {
        let mcfg = MonitorConfig {
            max_window: cfg.max_window,
            eps: cfg.eps,
            eps_split: cfg.eps_split,
            parties: cfg.monitor_parties,
        };
        let parties = (0..cfg.monitor_parties)
            .map(|p| PushParty::new(&mcfg, p))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("harness: monitor party: {e}"))?;
        let exact = (0..cfg.monitor_parties)
            .map(|_| ExactCount::new(cfg.max_window))
            .collect();
        Ok(MonitorPlane {
            cfg: mcfg,
            parties,
            exact,
            referee: MonitorReferee::new(),
        })
    }
}

fn engine_cfg(cfg: &SimConfig, root: Option<&Path>) -> EngineConfig {
    let mut b = EngineConfig::builder()
        .num_shards(cfg.num_shards)
        .max_window(cfg.max_window)
        .eps(cfg.eps)
        // Far above any schedule's step count so backpressure cannot
        // fire and distort the acknowledged-batch accounting.
        .queue_capacity(4096);
    if let Some(root) = root {
        b = b.persist_config(
            PersistConfig::new(root)
                // Every acknowledged batch is durable, so the oracle's
                // "acknowledged prefix" is exactly what must survive.
                .sync_policy(SyncPolicy::EveryBatch)
                // No auto-checkpoints: only explicit Checkpoint steps
                // and clean shutdowns move the checkpoint frontier.
                .checkpoint_every(0),
        );
    }
    b.build()
}

fn start_backend(cfg: &SimConfig, root: Option<&Path>) -> Result<Backend, String> {
    let ecfg = engine_cfg(cfg, root);
    if cfg.cluster_nodes > 0 {
        let mut servers = Vec::with_capacity(cfg.cluster_nodes);
        let mut addrs = Vec::with_capacity(cfg.cluster_nodes);
        for _ in 0..cfg.cluster_nodes {
            let server = Server::start_recorded(
                "127.0.0.1:0",
                ServerConfig {
                    engine: ecfg.clone(),
                    read_timeout: None,
                    ..Default::default()
                },
                telemetry(),
            )
            .map_err(|e| format!("harness: cluster server start: {e}"))?;
            addrs.push(server.local_addr());
            servers.push(Some(server));
        }
        let ccfg = ClusterConfig {
            replication: cfg.replication,
            ring_seed: cfg.ring_seed,
            max_window: cfg.max_window,
            eps: cfg.eps,
            // Dials to downed nodes must fail once and fail over, not
            // burn wall-clock retrying the same dead address.
            client: ClientConfig {
                retry: RetryPolicy::none(),
                ..Default::default()
            },
            ..Default::default()
        };
        let client = Box::new(
            ClusterClient::new_recorded(addrs.clone(), ccfg, telemetry())
                .map_err(|e| format!("harness: cluster client: {e}"))?,
        );
        let n = cfg.cluster_nodes;
        return Ok(Backend::Cluster {
            servers,
            client,
            addrs,
            killed: vec![false; n],
            partitioned: vec![false; n],
        });
    }
    if cfg.tcp {
        let server = Server::start_recorded(
            "127.0.0.1:0",
            ServerConfig {
                engine: ecfg,
                read_timeout: None,
                ..Default::default()
            },
            telemetry(),
        )
        .map_err(|e| format!("harness: server start: {e}"))?;
        let client =
            Client::connect_recorded(server.local_addr(), ClientConfig::default(), telemetry())
                .map_err(|e| format!("harness: client connect: {e}"))?;
        Ok(Backend::Tcp { server, client })
    } else {
        let (n, eps) = (ecfg.max_window, ecfg.eps);
        Ok(Backend::Direct(
            Engine::with_factory_recorded(ecfg, move || DetWave::new(n, eps), telemetry())
                .map_err(|e| format!("harness: engine start: {e}"))?,
        ))
    }
}

/// Newest (highest-sequence) WAL segment in a shard directory. After a
/// checkpoint the store reclaims older segments, so this is the live
/// one.
fn newest_segment(shard_dir: &Path) -> Result<PathBuf, String> {
    let mut best: Option<(u64, PathBuf)> = None;
    let entries = fs::read_dir(shard_dir)
        .map_err(|e| format!("harness: read {}: {e}", shard_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("harness: read {}: {e}", shard_dir.display()))?;
        let name = entry.file_name();
        if let Some(seq) = name.to_str().and_then(wal::parse_segment_file_name) {
            if best.as_ref().is_none_or(|(b, _)| seq > *b) {
                best = Some((seq, entry.path()));
            }
        }
    }
    best.map(|(_, p)| p)
        .ok_or_else(|| format!("harness: no WAL segment in {}", shard_dir.display()))
}

/// The three per-key oracles plus the acknowledged-batch history they
/// are rebuilt from after crashes and restarts.
struct Oracles {
    max_window: u64,
    eps: f64,
    exact: HashMap<u64, ExactCount>,
    shadow: HashMap<u64, DetWave>,
    eh: HashMap<u64, EhCount>,
    history: Vec<Vec<(u64, Vec<bool>)>>,
}

impl Oracles {
    fn new(cfg: &SimConfig) -> Oracles {
        Oracles {
            max_window: cfg.max_window,
            eps: cfg.eps,
            exact: HashMap::new(),
            shadow: HashMap::new(),
            eh: HashMap::new(),
            history: Vec::new(),
        }
    }

    fn apply(&mut self, batch: &[(u64, Vec<bool>)]) {
        self.feed(batch);
        self.history.push(batch.to_vec());
    }

    /// Reset to the first `acked` acknowledged batches (what recovery
    /// must restore after a crash or what survives a restart).
    fn rebuild(&mut self, acked: usize) {
        self.history.truncate(acked);
        self.exact.clear();
        self.shadow.clear();
        self.eh.clear();
        let history = std::mem::take(&mut self.history);
        for batch in &history {
            self.feed(batch);
        }
        self.history = history;
    }

    fn feed(&mut self, batch: &[(u64, Vec<bool>)]) {
        let (n, eps) = (self.max_window, self.eps);
        for (key, bits) in batch {
            let exact = self.exact.entry(*key).or_insert_with(|| ExactCount::new(n));
            let shadow = self
                .shadow
                .entry(*key)
                .or_insert_with(|| DetWave::new(n, eps).expect("validated parameters"));
            let eh = self
                .eh
                .entry(*key)
                .or_insert_with(|| EhCount::new(n, eps).expect("validated parameters"));
            for &bit in bits {
                exact.push_bit(bit);
                eh.push_bit(bit);
            }
            shadow.push_bits(bits);
        }
    }

    /// Check one answered query against all three oracles; returns the
    /// deterministic trace line on success, the violation detail
    /// otherwise.
    fn check_query(
        &self,
        key: u64,
        window: u64,
        got: &Result<Estimate, WaveError>,
    ) -> Result<String, String> {
        let eps = self.eps;
        let Some(exact) = self.exact.get(&key) else {
            return match got {
                Err(WaveError::UnknownKey { .. }) => {
                    Ok(format!("query key={key} w={window} -> unknown"))
                }
                other => Err(format!(
                    "query key={key} w={window}: expected UnknownKey, got {other:?}"
                )),
            };
        };
        let est = match got {
            Ok(est) => *est,
            Err(e) => {
                return Err(format!(
                    "query key={key} w={window}: unexpected error {e:?}"
                ))
            }
        };
        let truth = exact.query(window);
        let shadow = self.shadow[&key]
            .query(window)
            .map_err(|e| format!("query key={key} w={window}: shadow wave failed: {e:?}"))?;
        if est != shadow {
            return Err(format!(
                "query key={key} w={window}: engine {est:?} != shadow wave {shadow:?}"
            ));
        }
        if !est.brackets(truth) {
            return Err(format!(
                "query key={key} w={window}: truth {truth} outside [{}, {}]",
                est.lo, est.hi
            ));
        }
        if est.exact && (est.value != truth as f64 || est.lo != truth || est.hi != truth) {
            return Err(format!(
                "query key={key} w={window}: exact-flagged {est:?} but truth is {truth}"
            ));
        }
        if est.relative_error(truth) > eps + 1e-9 {
            return Err(format!(
                "query key={key} w={window}: wave error {} > eps {eps} (truth {truth}, value {})",
                est.relative_error(truth),
                est.value
            ));
        }
        let eh = self.eh[&key]
            .query(window)
            .map_err(|e| format!("query key={key} w={window}: eh baseline failed: {e:?}"))?;
        if !eh.brackets(truth) || eh.relative_error(truth) > eps + 1e-9 {
            return Err(format!(
                "query key={key} w={window}: eh baseline {eh:?} vs truth {truth} beyond eps {eps}"
            ));
        }
        // Agreement-within-ε between the two independent synopses.
        if (est.value - eh.value).abs() > 2.0 * eps * truth as f64 + 1e-9 {
            return Err(format!(
                "query key={key} w={window}: wave {} and eh {} disagree beyond 2·eps·truth={truth}",
                est.value, eh.value
            ));
        }
        Ok(format!(
            "query key={key} w={window} -> v={} lo={} hi={} exact={} truth={truth} eh={}",
            est.value, est.lo, est.hi, est.exact, eh.value
        ))
    }
}

/// Event trace with an incrementally maintained FNV-1a hash.
struct Trace {
    lines: Vec<String>,
    hash: u64,
}

impl Trace {
    fn new() -> Trace {
        Trace {
            lines: Vec::new(),
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn push(&mut self, line: String) {
        for b in line.bytes().chain(std::iter::once(b'\n')) {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.lines.push(line);
    }
}
