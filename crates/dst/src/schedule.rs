//! Seed-derived fault schedules.
//!
//! A [`Schedule`] is the *entire* input of one simulation run: the stack
//! configuration plus an ordered list of [`Step`]s whose payloads (batch
//! contents, window sizes, fault parameters, WAL cut points) are fully
//! materialized. Nothing is drawn from an RNG at execution time, which
//! gives the two properties the harness is built on:
//!
//! - **replayability** — `Schedule::from_seed(n)` is a pure function of
//!   `n`, so `waves dst --seed n` re-executes the identical run;
//! - **shrinkability** — removing a step never changes what any other
//!   step does, so greedy element-removal shrinking
//!   ([`proptest::shrink_elements`]) is sound.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use waves_streamgen::KeyedWorkload;

/// Serializable mirror of [`waves_net::Fault`] so schedules stay plain
/// data (`Fault` carries a `Duration`; this keeps integer millis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Accept the connection, then close it without dialing upstream.
    DropConnection,
    /// Stall each server→client chunk by this many milliseconds.
    DelayMs(u64),
    /// Forward only the first `n` reply bytes, then close.
    TruncateAfter(usize),
    /// Flip one byte at this offset of the reply stream.
    CorruptByteAt(usize),
}

impl FaultSpec {
    pub fn to_fault(self) -> waves_net::Fault {
        match self {
            FaultSpec::DropConnection => waves_net::Fault::DropConnection,
            FaultSpec::DelayMs(ms) => waves_net::Fault::Delay(std::time::Duration::from_millis(ms)),
            FaultSpec::TruncateAfter(n) => waves_net::Fault::TruncateAfter(n),
            FaultSpec::CorruptByteAt(n) => waves_net::Fault::CorruptByteAt(n),
        }
    }
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpec::DropConnection => write!(f, "drop-connection"),
            FaultSpec::DelayMs(ms) => write!(f, "delay-{ms}ms"),
            FaultSpec::TruncateAfter(n) => write!(f, "truncate-after-{n}"),
            FaultSpec::CorruptByteAt(n) => write!(f, "corrupt-byte-{n}"),
        }
    }
}

/// One step of a simulation. Payloads are materialized at generation
/// time — see the module docs for why.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Ingest one keyed batch through the stack and feed the oracles.
    /// `packed` picks the ingest currency: `true` sends the batch
    /// word-packed through `IngestRequest` (the primary API), `false`
    /// drives the deprecated per-bit shims — the coin flip keeps both
    /// entry points under the same three-oracle check.
    Ingest {
        batch: Vec<(u64, Vec<bool>)>,
        packed: bool,
    },
    /// Query one key at one window and check against every oracle.
    Query { key: u64, window: u64 },
    /// Barrier: wait until every shard drained its queue.
    Flush,
    /// Compare the engine snapshot's live-key count with the oracle.
    Snapshot,
    /// Durable checkpoint (successful no-op without persistence).
    Checkpoint,
    /// Clean shutdown and restart. With persistence the shutdown
    /// checkpoint preserves everything acknowledged; without it the
    /// restart wipes all state (the oracles reset with it).
    Restart,
    /// Hard crash: drop the stack *without* the shutdown checkpoint,
    /// then truncate the live WAL segment to `wal_cut_permille/1000` of
    /// its byte length before recovering. Only the records that fully
    /// survive the cut are expected back.
    Crash { wal_cut_permille: u16 },
    /// One query exchanged through a [`waves_net::ChaosProxy`] carrying
    /// this fault: the outcome must be either the correct answer or a
    /// typed error, within the hang budget. TCP schedules only.
    Chaos {
        fault: FaultSpec,
        key: u64,
        window: u64,
    },
    /// Cluster schedules only: shut one node's server down, losing its
    /// in-memory state. The generator keeps at most `replication - 1`
    /// nodes down at once so every key retains a live replica. No-op if
    /// the node is already down (keeps step removal shrink-sound).
    NodeKill { node: usize },
    /// Cluster schedules only: make one node unreachable from the
    /// client while its server — and its state — stays up. Replication
    /// shipments it misses are remembered and re-ship through
    /// anti-entropy after the rejoin. No-op if the node is already down.
    Partition { node: usize },
    /// Cluster schedules only: bring a downed node back. A killed node
    /// returns as a fresh empty server and is re-seeded key by key
    /// through anti-entropy; a partitioned one just becomes reachable
    /// again with its state intact. No-op if the node is up.
    Rejoin { node: usize },
    /// Monitor schedules only: feed bits to one continuous-monitoring
    /// party, which ships a delta to its referee only when its local
    /// drift crosses the ε-slack budget. After every push the harness
    /// re-checks the per-party drift invariant.
    MonitorPush { party: u64, bits: Vec<bool> },
    /// Monitor schedules only: read the referee's continuously valid
    /// answer and check it against three oracles — the exact per-party
    /// ring buffers, a pull-mode combine over the parties' live waves,
    /// and the ε+slack accuracy contract.
    MonitorQuery,
}

impl std::fmt::Display for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Step::Ingest { batch, packed } => {
                let items: usize = batch.iter().map(|(_, b)| b.len()).sum();
                let currency = if *packed { "packed" } else { "bool" };
                write!(
                    f,
                    "ingest({} events, {items} bits, {currency})",
                    batch.len()
                )
            }
            Step::Query { key, window } => write!(f, "query(key={key}, w={window})"),
            Step::Flush => write!(f, "flush"),
            Step::Snapshot => write!(f, "snapshot"),
            Step::Checkpoint => write!(f, "checkpoint"),
            Step::Restart => write!(f, "restart"),
            Step::Crash { wal_cut_permille } => write!(f, "crash(cut={wal_cut_permille}‰)"),
            Step::Chaos { fault, key, window } => {
                write!(f, "chaos({fault}, key={key}, w={window})")
            }
            Step::NodeKill { node } => write!(f, "node-kill(node={node})"),
            Step::Partition { node } => write!(f, "partition(node={node})"),
            Step::Rejoin { node } => write!(f, "rejoin(node={node})"),
            Step::MonitorPush { party, bits } => {
                write!(f, "monitor-push(party={party}, {} bits)", bits.len())
            }
            Step::MonitorQuery => write!(f, "monitor-query"),
        }
    }
}

/// Stack shape for one run, derived from the seed (or set explicitly
/// through [`ScheduleBuilder`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    pub max_window: u64,
    pub eps: f64,
    /// Keys the workload draws from; queries stretch slightly past this
    /// so `UnknownKey` paths are exercised too.
    pub num_keys: u64,
    pub num_shards: usize,
    /// Put a `waves-store` WAL + checkpoint tree under a scratch dir.
    /// Persistent schedules pin `num_shards` to 1 so WAL byte offsets
    /// can be tracked harness-side for crash cuts.
    pub persist: bool,
    /// Serve through a loopback `waves-net` server instead of calling
    /// the engine in-process. Chaos steps require this.
    pub tcp: bool,
    /// Nonzero routes the run through a `waves-cluster` client over this
    /// many loopback servers instead of a single backend. Cluster
    /// schedules use their own fault family (node kills, partitions,
    /// rejoins) and exclude persistence, plain-TCP chaos, snapshots, and
    /// restarts — those faults belong to the single-backend stacks.
    pub cluster_nodes: usize,
    /// Replicas per key when `cluster_nodes > 0`; the generator keeps at
    /// most `replication - 1` nodes down at once.
    pub replication: usize,
    /// Consistent-hash ring seed when `cluster_nodes > 0`, so replica
    /// placement itself varies across seeds.
    pub ring_seed: u64,
    /// Nonzero attaches a continuous-monitoring overlay: this many
    /// in-process push parties plus a referee, independent of the
    /// backend (so it survives restarts/crashes untouched). Monitor
    /// steps require it.
    pub monitor_parties: u64,
    /// Fraction of `eps` the monitor allocates to the per-party
    /// synopses; the rest becomes drift slack
    /// ([`waves_distributed::MonitorConfig::eps_split`]).
    pub eps_split: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_window: 64,
            eps: 0.25,
            num_keys: 5,
            num_shards: 1,
            persist: false,
            tcp: false,
            cluster_nodes: 0,
            replication: 2,
            ring_seed: 0,
            monitor_parties: 0,
            eps_split: 0.5,
        }
    }
}

/// A fully materialized simulation input. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    pub seed: u64,
    pub cfg: SimConfig,
    pub steps: Vec<Step>,
}

impl Schedule {
    /// Derive a complete schedule from a single seed: stack shape,
    /// workload, and every step payload. Pure — equal seeds give equal
    /// schedules.
    pub fn from_seed(seed: u64) -> Schedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let max_window = [16u64, 32, 48, 64, 96, 128, 256][rng.gen_range(0..7usize)];
        let eps = rng.gen_range(8u32..=40) as f64 / 100.0;
        let persist = rng.gen_bool(0.45);
        let tcp = rng.gen_bool(0.5);
        // A quarter of seeds exercise the multi-node cluster backend;
        // its fault family replaces the single-backend ones.
        let cluster = rng.gen_bool(0.25);
        let cluster_nodes = if cluster {
            rng.gen_range(2..=4usize)
        } else {
            0
        };
        // A quarter of seeds additionally carry the continuous-monitoring
        // overlay; it is backend-independent, so it composes with every
        // stack shape (direct, tcp, persistent, cluster).
        let monitor = rng.gen_bool(0.25);
        let monitor_parties = if monitor { rng.gen_range(2..=4u64) } else { 0 };
        let eps_split = if monitor {
            rng.gen_range(40u32..=70) as f64 / 100.0
        } else {
            0.5
        };
        let cfg = SimConfig {
            max_window,
            eps,
            num_keys: rng.gen_range(1..=10),
            num_shards: if persist && !cluster {
                1
            } else {
                rng.gen_range(1..=3)
            },
            persist: persist && !cluster,
            tcp: tcp && !cluster,
            cluster_nodes,
            replication: if cluster {
                rng.gen_range(2..=cluster_nodes.min(3))
            } else {
                2
            },
            ring_seed: if cluster { rng.next_u64() } else { 0 },
            monitor_parties,
            eps_split,
        };
        let mut workload = make_workload(&mut rng, &cfg);
        let n = rng.gen_range(24..=60);
        let mut steps = gen_steps(&mut rng, &cfg, &mut workload, n);
        // Epilogue: every seed ends by draining the stack and
        // interrogating each key at the full window plus one random one,
        // so even ingest-heavy schedules finish with real checks.
        steps.push(Step::Flush);
        for key in 0..cfg.num_keys.min(8) {
            steps.push(Step::Query {
                key,
                window: cfg.max_window,
            });
            steps.push(Step::Query {
                key,
                window: rng.gen_range(1..=cfg.max_window),
            });
        }
        if cfg.monitor_parties > 0 {
            steps.push(Step::MonitorQuery);
        }
        Schedule { seed, cfg, steps }
    }

    /// Hand-build a schedule (integration tests): fixed seed for replay
    /// reporting, explicit or seed-derived steps.
    pub fn builder(seed: u64) -> ScheduleBuilder {
        ScheduleBuilder {
            seed,
            cfg: SimConfig::default(),
            steps: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            workload: None,
        }
    }

    /// The command that replays this schedule when it came from
    /// [`Schedule::from_seed`].
    pub fn replay_hint(&self) -> String {
        format!("cargo run -p waves-cli -- dst --seed {}", self.seed)
    }
}

fn make_workload(rng: &mut StdRng, cfg: &SimConfig) -> KeyedWorkload {
    let density = rng.gen_range(10u32..=90) as f64 / 100.0;
    let max_burst = (cfg.max_window / 4).clamp(2, 24) as usize;
    let mut w =
        KeyedWorkload::new(cfg.num_keys, 4, density, rng.next_u64()).with_burst_range(1, max_burst);
    if cfg.num_keys > 2 && rng.gen_bool(0.4) {
        w = w.with_hot_set(0.7, (cfg.num_keys / 3).max(1));
    }
    w
}

fn gen_query(rng: &mut StdRng, cfg: &SimConfig) -> Step {
    Step::Query {
        // Stretch past the workload's key space so some queries hit
        // keys that never ingested (the `UnknownKey` contract).
        key: rng.gen_range(0..cfg.num_keys + 2),
        window: rng.gen_range(1..=cfg.max_window),
    }
}

fn gen_fault(rng: &mut StdRng) -> FaultSpec {
    match rng.gen_range(0..4u32) {
        0 => FaultSpec::DropConnection,
        1 => FaultSpec::DelayMs(rng.gen_range(40..=90)),
        2 => FaultSpec::TruncateAfter(rng.gen_range(0..=40)),
        _ => FaultSpec::CorruptByteAt(rng.gen_range(0..=40)),
    }
}

fn gen_steps(
    rng: &mut StdRng,
    cfg: &SimConfig,
    workload: &mut KeyedWorkload,
    n: usize,
) -> Vec<Step> {
    let mut steps = Vec::with_capacity(n);
    // Nodes currently killed or partitioned in a cluster schedule. The
    // generator caps this at `replication - 1` so no key ever loses its
    // last live replica, and rejoins only target genuinely downed nodes.
    let mut down: Vec<usize> = Vec::new();
    // Picks a node fault when headroom allows, a rejoin when one is
    // pending, and falls back to a query otherwise.
    let cluster_fault = |rng: &mut StdRng, down: &mut Vec<usize>| -> Step {
        if down.len() + 1 < cfg.replication {
            let up: Vec<usize> = (0..cfg.cluster_nodes)
                .filter(|i| !down.contains(i))
                .collect();
            let node = up[rng.gen_range(0..up.len())];
            down.push(node);
            if rng.gen_bool(0.5) {
                Step::NodeKill { node }
            } else {
                Step::Partition { node }
            }
        } else if !down.is_empty() {
            let node = down.remove(rng.gen_range(0..down.len()));
            Step::Rejoin { node }
        } else {
            gen_query(rng, cfg)
        }
    };
    for _ in 0..n {
        let roll = rng.gen_range(0..100u32);
        let step = if roll < 45 {
            let events = rng.gen_range(1..=6);
            Step::Ingest {
                batch: workload.next_batch(events),
                packed: rng.gen_bool(0.5),
            }
        } else if roll < 70 {
            gen_query(rng, cfg)
        } else if roll < 76 {
            Step::Flush
        } else if roll < 80 {
            if cfg.cluster_nodes > 0 {
                // Snapshot counts live keys on one engine; in a cluster
                // the keys are spread over nodes, so rejoin instead.
                if down.is_empty() {
                    gen_query(rng, cfg)
                } else {
                    let node = down.remove(rng.gen_range(0..down.len()));
                    Step::Rejoin { node }
                }
            } else {
                Step::Snapshot
            }
        } else if roll < 86 {
            if cfg.persist {
                Step::Checkpoint
            } else if cfg.cluster_nodes > 0 {
                cluster_fault(rng, &mut down)
            } else {
                gen_query(rng, cfg)
            }
        } else if roll < 90 {
            if cfg.cluster_nodes > 0 {
                cluster_fault(rng, &mut down)
            } else {
                Step::Restart
            }
        } else if roll < 95 {
            if cfg.persist {
                Step::Crash {
                    wal_cut_permille: rng.gen_range(0..=1000),
                }
            } else {
                gen_query(rng, cfg)
            }
        } else if cfg.tcp {
            Step::Chaos {
                fault: gen_fault(rng),
                key: rng.gen_range(0..cfg.num_keys),
                window: rng.gen_range(1..=cfg.max_window),
            }
        } else {
            gen_query(rng, cfg)
        };
        steps.push(step);
        // Monitor schedules interleave overlay traffic with the main
        // step stream: ~25% pushes (so drifts build and cross budgets)
        // and ~15% continuous-answer checks. Appended after the main
        // step so non-monitor schedules keep their structure.
        if cfg.monitor_parties > 0 {
            let roll = rng.gen_range(0..100u32);
            if roll < 25 {
                let party = rng.gen_range(0..cfg.monitor_parties);
                let len = rng.gen_range(1..=6usize);
                let bits = (0..len).map(|_| rng.gen_bool(0.5)).collect();
                steps.push(Step::MonitorPush { party, bits });
            } else if roll < 40 {
                steps.push(Step::MonitorQuery);
            }
        }
    }
    // Every downed node rejoins before the epilogue queries so the
    // final sweep also proves post-rejoin anti-entropy convergence.
    for node in down {
        steps.push(Step::Rejoin { node });
    }
    steps
}

/// Builds hand-shaped or seed-derived schedules for integration tests.
/// Configuration setters should come before step methods; the workload
/// is instantiated lazily from the seed on first random step.
pub struct ScheduleBuilder {
    seed: u64,
    cfg: SimConfig,
    steps: Vec<Step>,
    rng: StdRng,
    workload: Option<KeyedWorkload>,
}

impl ScheduleBuilder {
    pub fn max_window(mut self, n: u64) -> Self {
        self.cfg.max_window = n;
        self.workload = None;
        self
    }

    pub fn eps(mut self, eps: f64) -> Self {
        self.cfg.eps = eps;
        self
    }

    pub fn num_keys(mut self, n: u64) -> Self {
        self.cfg.num_keys = n.max(1);
        self.workload = None;
        self
    }

    /// Shard count for non-persistent schedules (persistence pins 1).
    pub fn num_shards(mut self, n: usize) -> Self {
        self.cfg.num_shards = n.max(1);
        self
    }

    /// Persist through `waves-store` in a scratch dir. Pins one shard
    /// so crash cuts can classify WAL records by byte offset.
    pub fn persist(mut self) -> Self {
        self.cfg.persist = true;
        self.cfg.num_shards = 1;
        self
    }

    /// Serve over loopback TCP instead of in-process.
    pub fn tcp(mut self) -> Self {
        self.cfg.tcp = true;
        self
    }

    /// Route the run through a `waves-cluster` client over `nodes`
    /// loopback servers with `replication` replicas per key. Clears
    /// persistence and plain-TCP mode — cluster schedules carry their
    /// own fault family.
    pub fn cluster(mut self, nodes: usize, replication: usize) -> Self {
        self.cfg.cluster_nodes = nodes.max(2);
        self.cfg.replication = replication.clamp(2, self.cfg.cluster_nodes);
        self.cfg.persist = false;
        self.cfg.tcp = false;
        self
    }

    /// Consistent-hash ring seed for cluster schedules.
    pub fn ring_seed(mut self, seed: u64) -> Self {
        self.cfg.ring_seed = seed;
        self
    }

    /// Attach the continuous-monitoring overlay: `parties` push parties
    /// sharing the ε-slack pool, with `eps_split` of the budget going to
    /// the synopses. Composes with any backend.
    pub fn monitor(mut self, parties: u64, eps_split: f64) -> Self {
        self.cfg.monitor_parties = parties.max(1);
        self.cfg.eps_split = eps_split;
        self
    }

    /// Ingest an explicit batch through the deprecated per-bit shims.
    pub fn ingest(mut self, batch: Vec<(u64, Vec<bool>)>) -> Self {
        self.steps.push(Step::Ingest {
            batch,
            packed: false,
        });
        self
    }

    /// Ingest an explicit batch word-packed through `IngestRequest`.
    pub fn ingest_packed(mut self, batch: Vec<(u64, Vec<bool>)>) -> Self {
        self.steps.push(Step::Ingest {
            batch,
            packed: true,
        });
        self
    }

    /// Ingest `events` workload events as one batch, flipping the same
    /// packed-vs-bool coin [`Schedule::from_seed`] uses.
    pub fn ingest_random(mut self, events: usize) -> Self {
        let batch = self.workload().next_batch(events);
        let packed = self.rng.gen_bool(0.5);
        self.steps.push(Step::Ingest { batch, packed });
        self
    }

    pub fn query(mut self, key: u64, window: u64) -> Self {
        self.steps.push(Step::Query { key, window });
        self
    }

    /// Query every workload key at the full window.
    pub fn query_all(mut self) -> Self {
        for key in 0..self.cfg.num_keys {
            self.steps.push(Step::Query {
                key,
                window: self.cfg.max_window,
            });
        }
        self
    }

    pub fn flush(mut self) -> Self {
        self.steps.push(Step::Flush);
        self
    }

    pub fn snapshot(mut self) -> Self {
        self.steps.push(Step::Snapshot);
        self
    }

    pub fn checkpoint(mut self) -> Self {
        self.steps.push(Step::Checkpoint);
        self
    }

    pub fn restart(mut self) -> Self {
        self.steps.push(Step::Restart);
        self
    }

    pub fn crash(mut self, wal_cut_permille: u16) -> Self {
        self.steps.push(Step::Crash { wal_cut_permille });
        self
    }

    /// Adds a chaos exchange; implies a TCP schedule.
    pub fn chaos(mut self, fault: FaultSpec, key: u64, window: u64) -> Self {
        self.cfg.tcp = true;
        self.steps.push(Step::Chaos { fault, key, window });
        self
    }

    /// Shut a cluster node down, losing its state. Cluster schedules
    /// only ([`ScheduleBuilder::cluster`] must come first).
    pub fn node_kill(mut self, node: usize) -> Self {
        self.steps.push(Step::NodeKill { node });
        self
    }

    /// Make a cluster node unreachable while its state survives.
    pub fn partition(mut self, node: usize) -> Self {
        self.steps.push(Step::Partition { node });
        self
    }

    /// Bring a downed cluster node back (fresh and empty after a kill,
    /// intact after a partition).
    pub fn rejoin(mut self, node: usize) -> Self {
        self.steps.push(Step::Rejoin { node });
        self
    }

    /// Feed explicit bits to one monitor party
    /// ([`ScheduleBuilder::monitor`] must come first).
    pub fn monitor_push(mut self, party: u64, bits: Vec<bool>) -> Self {
        self.steps.push(Step::MonitorPush { party, bits });
        self
    }

    /// Check the referee's continuous answer against its oracles.
    pub fn monitor_query(mut self) -> Self {
        self.steps.push(Step::MonitorQuery);
        self
    }

    /// Append `n` seed-derived steps with the same generator
    /// [`Schedule::from_seed`] uses (weights adapt to the configured
    /// persistence/transport).
    pub fn random_steps(mut self, n: usize) -> Self {
        if self.workload.is_none() {
            self.workload = Some(make_workload(&mut self.rng, &self.cfg));
        }
        let workload = self.workload.as_mut().expect("workload just built");
        let mut steps = gen_steps(&mut self.rng, &self.cfg, workload, n);
        self.steps.append(&mut steps);
        self
    }

    pub fn build(self) -> Schedule {
        Schedule {
            seed: self.seed,
            cfg: self.cfg,
            steps: self.steps,
        }
    }

    fn workload(&mut self) -> &mut KeyedWorkload {
        if self.workload.is_none() {
            self.workload = Some(make_workload(&mut self.rng, &self.cfg));
        }
        self.workload.as_mut().expect("workload just built")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_pure() {
        for seed in [0u64, 1, 7, 42, 0xDEAD_BEEF] {
            assert_eq!(Schedule::from_seed(seed), Schedule::from_seed(seed));
        }
        assert_ne!(Schedule::from_seed(1).steps, Schedule::from_seed(2).steps);
    }

    #[test]
    fn generated_steps_respect_config() {
        for seed in 0..50u64 {
            let s = Schedule::from_seed(seed);
            assert!(s.cfg.eps > 0.0 && s.cfg.eps < 1.0);
            if s.cfg.persist {
                assert_eq!(s.cfg.num_shards, 1, "persist pins one shard");
            }
            if s.cfg.cluster_nodes > 0 {
                assert!(!s.cfg.persist && !s.cfg.tcp, "cluster excludes persist/tcp");
                assert!(s.cfg.replication >= 2 && s.cfg.replication <= s.cfg.cluster_nodes);
            }
            if s.cfg.monitor_parties > 0 {
                assert!(s.cfg.eps_split > 0.0 && s.cfg.eps_split < 1.0);
                assert!(
                    s.steps.iter().any(|st| matches!(st, Step::MonitorQuery)),
                    "monitor schedules end with a continuous-answer check"
                );
            }
            let mut down: Vec<usize> = Vec::new();
            for step in &s.steps {
                match step {
                    Step::Chaos { .. } => assert!(s.cfg.tcp, "chaos requires tcp"),
                    Step::Crash { .. } => assert!(s.cfg.persist, "crash requires persist"),
                    Step::Query { window, .. } => {
                        assert!(*window >= 1 && *window <= s.cfg.max_window)
                    }
                    Step::Ingest { batch, .. } => assert!(!batch.is_empty()),
                    Step::Snapshot | Step::Restart => {
                        assert_eq!(s.cfg.cluster_nodes, 0, "single-backend faults only")
                    }
                    Step::NodeKill { node } | Step::Partition { node } => {
                        assert!(s.cfg.cluster_nodes > 0, "node faults require cluster");
                        assert!(*node < s.cfg.cluster_nodes);
                        assert!(!down.contains(node), "fault targets an up node");
                        down.push(*node);
                        assert!(
                            down.len() < s.cfg.replication,
                            "every key keeps a live replica"
                        );
                    }
                    Step::Rejoin { node } => {
                        assert!(s.cfg.cluster_nodes > 0, "rejoin requires cluster");
                        assert!(down.contains(node), "rejoin targets a downed node");
                        down.retain(|n| n != node);
                    }
                    Step::MonitorPush { party, bits } => {
                        assert!(s.cfg.monitor_parties > 0, "monitor push requires monitor");
                        assert!(*party < s.cfg.monitor_parties);
                        assert!(!bits.is_empty());
                    }
                    Step::MonitorQuery => {
                        assert!(s.cfg.monitor_parties > 0, "monitor query requires monitor")
                    }
                    _ => {}
                }
            }
            if s.cfg.cluster_nodes > 0 {
                assert!(down.is_empty(), "all downed nodes rejoin before epilogue");
            }
        }
    }

    #[test]
    fn builder_chaos_implies_tcp() {
        let s = Schedule::builder(9)
            .chaos(FaultSpec::DropConnection, 0, 8)
            .build();
        assert!(s.cfg.tcp);
    }

    #[test]
    fn builder_cluster_clears_persist_and_tcp() {
        let s = Schedule::builder(3)
            .persist()
            .tcp()
            .cluster(3, 2)
            .node_kill(1)
            .rejoin(1)
            .build();
        assert_eq!(s.cfg.cluster_nodes, 3);
        assert_eq!(s.cfg.replication, 2);
        assert!(!s.cfg.persist && !s.cfg.tcp);
        assert_eq!(
            s.steps,
            vec![Step::NodeKill { node: 1 }, Step::Rejoin { node: 1 }]
        );
    }

    #[test]
    fn builder_random_steps_are_seed_deterministic() {
        let a = Schedule::builder(11).persist().random_steps(30).build();
        let b = Schedule::builder(11).persist().random_steps(30).build();
        assert_eq!(a, b);
    }
}
