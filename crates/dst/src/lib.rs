//! # waves-dst — deterministic full-stack simulation harness
//!
//! FoundationDB-style deterministic simulation testing for the waves
//! stack: a single `u64` seed derives a complete [`Schedule`] — stack
//! shape (sharding, persistence, transport), keyed workload batches,
//! queries at random windows, and faults (connection drop / delay /
//! truncate / corrupt through [`waves_net::ChaosProxy`], WAL kills at a
//! byte offset, restarts with recovery, flushes and checkpoints) — and
//! [`run`] executes it against a real `waves-engine` (optionally
//! persisted through `waves-store` in a scratch dir, optionally behind
//! a real `waves-net` loopback server), checking every answer against
//! the exact ring-buffer oracle and the EH baseline.
//!
//! Any violation prints `DST FAILURE seed=<n> step=<k>` plus a
//! minimized schedule obtained by greedy step-removal shrinking
//! ([`minimize`]); `waves dst --seed <n>` replays the schedule exactly.
//! Replay identity is checkable: [`RunReport::trace_hash`] is a pure
//! function of the seed.
//!
//! ```
//! use waves_dst::{run_seed, Schedule};
//!
//! // Equal seeds reproduce the identical event trace.
//! let a = run_seed(3).expect("oracle holds");
//! let b = run_seed(3).expect("oracle holds");
//! assert_eq!(a.trace_hash, b.trace_hash);
//! assert_eq!(Schedule::from_seed(3), Schedule::from_seed(3));
//! ```

pub mod schedule;
pub mod sim;

pub use schedule::{FaultSpec, Schedule, ScheduleBuilder, SimConfig, Step};
pub use sim::{
    minimize, run, run_or_minimize, run_seed, Failure, RunReport, Violation, HANG_BUDGET,
};
