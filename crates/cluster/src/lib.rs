//! `waves-cluster`: consistent-hash routing, replicated synopsis
//! shipping, and failover over a set of `waves-net` servers.
//!
//! The paper's distributed-streams model has parties maintain mergeable
//! wave synopses and a referee combine them; `waves-net` put a network
//! between one client and one server. This crate scales that out to N
//! servers with nothing but the primitives the rest of the workspace
//! already proves:
//!
//! * [`Ring`] — a seeded consistent-hash ring (virtual nodes for
//!   balance). Placement is a pure function of `(seed, vnodes, node
//!   set, key)`, so independent clients route identically with zero
//!   coordination, and the deterministic simulator can replay a whole
//!   cluster schedule from a `u64`.
//! * [`ClusterClient`] — routes each key to R replicas: the primary
//!   takes the raw ingest stream, followers receive the key's synopsis
//!   `encode()` bytes through the wire v5 `REPLICATE` frame (install =
//!   replace, idempotent). Reads fail over through the replica set in
//!   ring order; nodes that missed replication rounds are caught up by
//!   anti-entropy on reconnect.
//!
//! Everything is std-only and blocking, like the rest of the workspace:
//! no async runtime, no consensus protocol — single-writer-per-key
//! replication with an idempotent install is enough for synopses,
//! because a wave's `encode()` captures its complete state.

pub mod client;
pub mod ring;

pub use client::{ClusterClient, ClusterConfig};
pub use ring::Ring;
