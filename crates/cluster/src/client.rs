//! The cluster client: consistent-hash routing, primary/follower
//! synopsis replication, anti-entropy on reconnect, and failover.
//!
//! A [`ClusterClient`] fronts N `waves-net` servers. Each key is routed
//! by the seeded [`Ring`] to R replicas: the *primary*
//! (first in ring order) receives the raw ingest stream; the followers
//! receive the key's synopsis `encode()` bytes through the wire v5
//! `REPLICATE` frame at [`ClusterClient::replicate_all`] time. The
//! client keeps a local *shadow* synopsis per key — byte-identical to
//! the primary's state, because both saw the same bits in the same
//! order — and that shadow is the replication source. The shadow is
//! what makes failure handling clean:
//!
//! * **Failover (reads).** A query walks the key's replicas in ring
//!   order and returns the first answer. A follower's answer is at
//!   worst as stale as the last replication round — never wrong, just
//!   behind — and the walk counts a `cluster_failovers_total` tick per
//!   dead node it skips.
//! * **Repair (writes).** Ingest is not idempotent, so a failed ingest
//!   is never blindly re-sent (a reply lost after the server applied
//!   the batch would double-count). Instead the client re-ships the
//!   whole shadow through `REPLICATE` — an idempotent *install* that
//!   converges to the same state no matter how many times it lands.
//! * **Anti-entropy (rejoin).** A node that was unreachable at
//!   replication time has its stale keys remembered; the next
//!   successful connection to it re-ships them before anything else
//!   (`cluster_anti_entropy_merges_total` counts the catch-ups).
//!
//! Cross-key aggregates use [`waves_distributed::combine_estimates`]:
//! distinct keys are disjoint substreams, so their estimates combine
//! additively ([`ClusterClient::combined_total`]). Replica *copies* of
//! one key never combine — an install replaces, because summing two
//! copies of the same stream would double-count it.

use std::collections::{BTreeSet, HashMap};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use waves_core::{Bits, DetWave, Estimate, WaveError};
use waves_distributed::combine_estimates;
use waves_engine::IngestRequest;
use waves_net::{Client, ClientConfig, RetryPolicy, SynopsisKind};
use waves_obs::{HistId, MetricId, NoopRecorder, Recorder};

use crate::ring::Ring;

/// Cluster topology and synopsis knobs. The synopsis parameters must
/// match the servers' engine config: the shadow mirrors the primary.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Replicas per key (primary + followers), clamped to at least 1
    /// and at most the node count at routing time.
    pub replication: usize,
    /// Virtual nodes per server on the hash ring.
    pub vnodes: usize,
    /// Seed for the ring's placement hash: clients sharing a seed (and
    /// node list) route identically without coordination.
    pub ring_seed: u64,
    /// Max window of the per-key shadow synopses (must match servers).
    pub max_window: u64,
    /// Accuracy of the per-key shadow synopses (must match servers).
    pub eps: f64,
    /// Per-connection transport knobs, including the [`RetryPolicy`]
    /// that governs both same-node retries and the failover judgment.
    pub client: ClientConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replication: 2,
            vnodes: 16,
            ring_seed: 0,
            max_window: 1024,
            eps: 0.1,
            client: ClientConfig::default(),
        }
    }
}

/// A client over a fixed set of `waves-net` servers, routing keys by
/// consistent hash with primary/follower replication and failover.
pub struct ClusterClient<R: Recorder + Send + Sync + 'static = NoopRecorder> {
    nodes: Vec<SocketAddr>,
    ring: Ring,
    cfg: ClusterConfig,
    /// One lazy connection per node; `None` means down or not yet
    /// dialed. A transport failure drops the slot back to `None`.
    conns: Vec<Option<Client<R>>>,
    /// Per-key shadow synopses — the replication source of truth.
    shadows: HashMap<u64, DetWave>,
    /// Validated prototype the shadows clone from.
    template: DetWave,
    /// Per-node keys whose last replication to that node failed; the
    /// next successful connection re-ships them (anti-entropy).
    pending: Vec<BTreeSet<u64>>,
    rec: Arc<R>,
}

impl ClusterClient<NoopRecorder> {
    /// Build a client over `nodes` with observability disabled. No
    /// connection is dialed until the first request needs it.
    pub fn new(nodes: Vec<SocketAddr>, cfg: ClusterConfig) -> Result<Self, WaveError> {
        Self::new_recorded(nodes, cfg, Arc::new(NoopRecorder))
    }
}

impl<R: Recorder + Send + Sync + 'static> ClusterClient<R> {
    /// Build a client recording Cluster* counters and replica-lag
    /// observations into `rec` (also shared with every per-node
    /// [`Client`]).
    pub fn new_recorded(
        nodes: Vec<SocketAddr>,
        cfg: ClusterConfig,
        rec: Arc<R>,
    ) -> Result<Self, WaveError> {
        if nodes.is_empty() {
            return Err(WaveError::io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "cluster needs at least one node",
            )));
        }
        // Validate the synopsis parameters once; every shadow clones
        // this instead of re-running fallible construction.
        let template = DetWave::new(cfg.max_window, cfg.eps)?;
        let ring = Ring::new(cfg.ring_seed, cfg.vnodes, 0..nodes.len() as u64);
        let pending = vec![BTreeSet::new(); nodes.len()];
        Ok(ClusterClient {
            conns: (0..nodes.len()).map(|_| None).collect(),
            nodes,
            ring,
            cfg,
            shadows: HashMap::new(),
            template,
            pending,
            rec,
        })
    }

    /// The ring the client routes with (placement is pure in its seed,
    /// vnode count, and node set).
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The key's replica set, primary first, in failover order.
    pub fn replicas_of(&self, key: u64) -> Vec<usize> {
        self.ring
            .replicas(key, self.cfg.replication.max(1))
            .into_iter()
            .map(|n| n as usize)
            .collect()
    }

    /// Keys this client has ingested (and therefore can replicate).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.shadows.keys().copied()
    }

    /// Repoint one node at a new address, dropping any open connection
    /// to the old one. The deterministic simulator uses this to model
    /// partitions (swap in an unreachable address) and rejoins (swap
    /// the real address back, or a restarted server's new port); an
    /// operator would use it for node replacement. Keys the node missed
    /// while unreachable are still remembered and re-ship through
    /// anti-entropy on the next successful connection.
    pub fn set_node_addr(&mut self, node: usize, addr: SocketAddr) {
        self.conns[node] = None;
        self.nodes[node] = addr;
    }

    /// Declare every key routed to `node` stale there: a node that came
    /// back *empty* (crashed and restarted without its state) must have
    /// its whole key set re-installed, not just the keys that failed a
    /// replication round. The re-ship happens through the normal
    /// anti-entropy path on the next connection.
    pub fn mark_node_stale(&mut self, node: usize) {
        self.conns[node] = None;
        let keys: Vec<u64> = self.shadows.keys().copied().collect();
        for key in keys {
            if self.replicas_of(key).contains(&node) {
                self.pending[node].insert(key);
            }
        }
    }

    /// Errors worth walking to the next replica for: connection-shaped
    /// transport failures plus timeouts. Same-node re-sends stay
    /// restricted to [`RetryPolicy::is_retryable`]; failover is wider
    /// because the *next* node is a different bet entirely.
    fn failover_worthy(e: &WaveError) -> bool {
        RetryPolicy::is_retryable(e) || matches!(e, WaveError::Timeout { .. })
    }

    /// Connect to `node` if not already connected, running anti-entropy
    /// (re-shipping every pending key) before the connection is handed
    /// to any other traffic.
    fn ensure_conn(&mut self, node: usize) -> Result<(), WaveError> {
        if self.conns[node].is_some() {
            return Ok(());
        }
        let mut conn = Client::connect_recorded(
            self.nodes[node],
            self.cfg.client.clone(),
            Arc::clone(&self.rec),
        )?;
        // Anti-entropy: the node missed replication rounds while it was
        // down; catch it up before trusting it with reads.
        while let Some(&key) = self.pending[node].iter().next() {
            let bytes = self.shadows[&key].encode();
            conn.replicate(key, SynopsisKind::DetWave, bytes)?;
            self.pending[node].remove(&key);
            self.rec.incr(MetricId::ClusterAntiEntropyMerges, 1);
        }
        self.conns[node] = Some(conn);
        Ok(())
    }

    /// Drop `node`'s connection after a transport failure.
    fn drop_conn(&mut self, node: usize) {
        self.conns[node] = None;
    }

    /// Ship the key's shadow to one node as a `REPLICATE` install.
    fn ship(&mut self, key: u64, node: usize) -> Result<(), WaveError> {
        if let Err(e) = self.ensure_conn(node) {
            // Unreachable at dial time still means the node missed this
            // key's state — remember it or the rejoin reads stale.
            self.pending[node].insert(key);
            return Err(e);
        }
        let bytes = self.shadows[&key].encode();
        let t0 = self.rec.enabled().then(Instant::now);
        let res = self.conns[node]
            .as_mut()
            .expect("ensure_conn just connected")
            .replicate(key, SynopsisKind::DetWave, bytes);
        match res {
            Ok(()) => {
                self.rec.incr(MetricId::ClusterReplicationsShipped, 1);
                if let Some(t0) = t0 {
                    self.rec
                        .observe(HistId::ClusterReplicaLagNs, t0.elapsed().as_nanos() as u64);
                }
                self.pending[node].remove(&key);
                Ok(())
            }
            Err(e) => {
                self.drop_conn(node);
                self.pending[node].insert(key);
                Err(e)
            }
        }
    }

    /// Ingest the key's next bits: the shadow applies them, then the
    /// primary. If the primary can't take the ingest, the client
    /// *repairs* instead of re-sending: it walks the replica set
    /// shipping the full shadow as an idempotent install, so the bits
    /// are durable on the first node that answers. Fails only when
    /// every replica is unreachable.
    pub fn ingest(&mut self, key: u64, bits: impl Into<Bits>) -> Result<(), WaveError> {
        let bits: Bits = bits.into();
        let replicas = self.replicas_of(key);
        let primary = replicas[0];
        // Reconnect (and run anti-entropy) *before* the shadow absorbs
        // this batch: a catch-up install that already contained these
        // bits would double-count them when the ingest below lands too.
        let conn_res = self.ensure_conn(primary);
        let shadow = self
            .shadows
            .entry(key)
            .or_insert_with(|| self.template.clone());
        for b in bits.iter() {
            shadow.push_bit(b);
        }
        let primary_err = match conn_res {
            Ok(()) => {
                match self.conns[primary]
                    .as_mut()
                    .expect("ensure_conn just connected")
                    .ingest(IngestRequest::of(key, bits))
                {
                    Ok(()) => return Ok(()),
                    Err(e) if Self::failover_worthy(&e) => {
                        self.drop_conn(primary);
                        e
                    }
                    // Server-side rejection (backpressure, bad window):
                    // the node is healthy, the request is the problem.
                    Err(e) => return Err(e),
                }
            }
            Err(e) => e,
        };
        // The primary missed this batch (and possibly earlier state:
        // it may be a fresh process). Repair by installing the shadow
        // on the first reachable replica, primary included.
        self.pending[primary].insert(key);
        let mut last = primary_err;
        for node in replicas {
            self.rec.incr(MetricId::ClusterFailovers, 1);
            match self.ship(key, node) {
                Ok(()) => return Ok(()),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// One replication round: every key's shadow ships to its
    /// followers (the primary already holds the state — it applied the
    /// ingest stream). Unreachable followers are remembered for
    /// anti-entropy; the round itself never fails over them. Returns
    /// the number of installs acknowledged.
    pub fn replicate_all(&mut self) -> usize {
        let keys: Vec<u64> = self.shadows.keys().copied().collect();
        let mut shipped = 0usize;
        for key in keys {
            for node in self.replicas_of(key).into_iter().skip(1) {
                if self.ship(key, node).is_ok() {
                    shipped += 1;
                }
            }
        }
        shipped
    }

    /// Window query with failover: walk the key's replicas in ring
    /// order, return the first answer. Counts one
    /// `cluster_failovers_total` tick per dead node skipped. A
    /// follower's answer reflects the last replication round.
    pub fn query(&mut self, key: u64, window: u64) -> Result<Estimate, WaveError> {
        let mut last: Option<WaveError> = None;
        for node in self.replicas_of(key) {
            if last.is_some() {
                // We are past the primary because it failed.
                self.rec.incr(MetricId::ClusterFailovers, 1);
            }
            let err = match self.ensure_conn(node) {
                Ok(()) => {
                    match self.conns[node]
                        .as_mut()
                        .expect("ensure_conn just connected")
                        .query(key, window)
                    {
                        Ok(est) => return Ok(est),
                        Err(e) => e,
                    }
                }
                Err(e) => e,
            };
            if !Self::failover_worthy(&err) {
                return Err(err);
            }
            self.drop_conn(node);
            last = Some(err);
        }
        Err(last.unwrap_or_else(|| {
            WaveError::io(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "no replica answered",
            ))
        }))
    }

    /// Barrier on every currently connected node: primaries drain their
    /// shard queues, so a following [`ClusterClient::replicate_all`]
    /// ships state the primaries have already applied.
    pub fn flush(&mut self) -> Result<(), WaveError> {
        for node in 0..self.nodes.len() {
            if self.conns[node].is_some() {
                if let Err(e) = self.conns[node].as_mut().unwrap().flush() {
                    if Self::failover_worthy(&e) {
                        self.drop_conn(node);
                    } else {
                        return Err(e);
                    }
                }
            }
        }
        Ok(())
    }

    /// Cluster-wide total over every key this client owns: each key is
    /// queried with failover and the per-key estimates — disjoint
    /// substreams — combine additively through
    /// [`waves_distributed::combine_estimates`].
    pub fn combined_total(&mut self, window: u64) -> Result<Estimate, WaveError> {
        let keys: Vec<u64> = self.shadows.keys().copied().collect();
        let mut parts = Vec::with_capacity(keys.len());
        for key in keys {
            parts.push(self.query(key, window)?);
        }
        Ok(combine_estimates(parts))
    }

    /// The client-side shadow's own answer — the oracle the servers are
    /// measured against in tests (the shadow saw every bit exactly
    /// once, in order).
    pub fn shadow_query(&self, key: u64, window: u64) -> Result<Estimate, WaveError> {
        match self.shadows.get(&key) {
            Some(w) => w.query(window),
            None => Err(WaveError::UnknownKey { key }),
        }
    }
}
