//! The seeded consistent-hash ring: deterministic key placement over a
//! set of nodes, with virtual nodes for balance.
//!
//! Every placement decision derives from three inputs only — the ring
//! seed, the node ids, and the key — through a fixed mixing function.
//! Two [`Ring`]s built from the same inputs route every key
//! identically, on any machine, in any process: that is what lets
//! independent [`ClusterClient`](crate::ClusterClient)s agree on
//! primaries without coordination, and what lets the DST replay a
//! cluster schedule bit-exactly from its seed.
//!
//! Each node contributes `vnodes` points on the `u64` circle; a key
//! hashes to a position and its replicas are the first R *distinct*
//! nodes clockwise from there. Adding a node moves only the keys whose
//! arc it captures (the classic consistent-hashing guarantee — the
//! property tests at the bottom pin it).

/// The splitmix64 finalizer: a cheap, well-distributed `u64 -> u64`
/// mix. Fixed forever — changing it would reshuffle every placement.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring over `u64` node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    seed: u64,
    vnodes: usize,
    /// Sorted (point, node) pairs: each node owns `vnodes` points.
    points: Vec<(u64, u64)>,
}

impl Ring {
    /// Build a ring with `vnodes` virtual nodes per node (clamped to at
    /// least 1). Node order does not matter: the ring is a pure
    /// function of `(seed, vnodes, node set)`.
    pub fn new(seed: u64, vnodes: usize, nodes: impl IntoIterator<Item = u64>) -> Self {
        let mut ring = Ring {
            seed,
            vnodes: vnodes.max(1),
            points: Vec::new(),
        };
        for node in nodes {
            ring.add_node(node);
        }
        ring
    }

    /// The seed the ring was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of distinct nodes on the ring.
    pub fn num_nodes(&self) -> usize {
        let mut ids: Vec<u64> = self.points.iter().map(|&(_, n)| n).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Insert `node`'s virtual points. Inserting a node twice is a
    /// no-op (its points are already present at the same positions).
    pub fn add_node(&mut self, node: u64) {
        let base = mix(self.seed ^ mix(node));
        for v in 0..self.vnodes as u64 {
            let point = mix(base.wrapping_add(mix(v + 1)));
            let pair = (point, node);
            if let Err(i) = self.points.binary_search(&pair) {
                self.points.insert(i, pair);
            }
        }
    }

    /// Remove every point owned by `node`. Keys whose primary was a
    /// different node are unaffected (property-tested below).
    pub fn remove_node(&mut self, node: u64) {
        self.points.retain(|&(_, n)| n != node);
    }

    /// The key's position on the circle.
    fn position(&self, key: u64) -> u64 {
        mix(self.seed ^ mix(key).rotate_left(32))
    }

    /// The first `r` *distinct* nodes clockwise from the key's
    /// position: index 0 is the primary, the rest are followers in
    /// failover order. Returns fewer than `r` nodes only when the ring
    /// has fewer than `r` distinct nodes.
    pub fn replicas(&self, key: u64, r: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(r.min(self.points.len()));
        if self.points.is_empty() || r == 0 {
            return out;
        }
        let pos = self.position(key);
        let start = self.points.partition_point(|&(p, _)| p < pos);
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            if !out.contains(&node) {
                out.push(node);
                if out.len() == r {
                    break;
                }
            }
        }
        out
    }

    /// The key's primary node, or `None` on an empty ring.
    pub fn primary(&self, key: u64) -> Option<u64> {
        self.replicas(key, 1).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_ring_routes_nothing() {
        let ring = Ring::new(1, 8, []);
        assert!(ring.is_empty());
        assert_eq!(ring.primary(42), None);
        assert!(ring.replicas(42, 3).is_empty());
    }

    #[test]
    fn double_add_is_idempotent() {
        let mut a = Ring::new(9, 8, [1, 2, 3]);
        let b = a.clone();
        a.add_node(2);
        assert_eq!(a, b);
    }

    #[test]
    fn vnodes_spread_load() {
        // With enough virtual nodes no single node owns everything.
        let ring = Ring::new(7, 32, 0..4);
        let mut counts = [0usize; 4];
        for key in 0..4000u64 {
            counts[ring.primary(key).unwrap() as usize] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            assert!(
                (400..=2200).contains(&c),
                "node {node} owns {c} of 4000 keys — badly unbalanced"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every key maps to exactly min(R, n) distinct nodes, primary
        /// first.
        #[test]
        fn keys_map_to_exactly_r_distinct_nodes(
            seed in 0u64..=1000,
            n in 1usize..=8,
            r in 1usize..=5,
            key in 0u64..=u64::MAX,
        ) {
            let ring = Ring::new(seed, 16, (0..n as u64).map(|i| i * 31 + 5));
            let reps = ring.replicas(key, r);
            prop_assert_eq!(reps.len(), r.min(n));
            let mut uniq = reps.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), reps.len(), "replica list repeats a node");
            prop_assert_eq!(reps[0], ring.primary(key).unwrap());
        }

        /// Two rings built from the same (seed, vnodes, node set) route
        /// every key identically — node insertion order included.
        #[test]
        fn routing_is_deterministic_across_instances(
            seed in 0u64..=1000,
            keys in prop::collection::vec(0u64..=u64::MAX, 1..40),
        ) {
            let a = Ring::new(seed, 16, [3, 1, 4, 1, 5]);
            let b = Ring::new(seed, 16, [5, 4, 3, 1]); // same set, other order + dup
            for &key in &keys {
                prop_assert_eq!(a.replicas(key, 3), b.replicas(key, 3));
            }
        }

        /// Adding a node moves a key's primary only onto the *new*
        /// node; every key it does not capture keeps its old primary.
        #[test]
        fn join_moves_only_the_captured_arc(
            seed in 0u64..=1000,
            n in 1usize..=6,
            keys in prop::collection::vec(0u64..=u64::MAX, 1..60),
        ) {
            let before = Ring::new(seed, 16, 0..n as u64);
            let mut after = before.clone();
            let newcomer = n as u64;
            after.add_node(newcomer);
            for &key in &keys {
                let old = before.primary(key).unwrap();
                let new = after.primary(key).unwrap();
                prop_assert!(
                    new == old || new == newcomer,
                    "key {} jumped {} -> {} though neither is the joined node {}",
                    key, old, new, newcomer
                );
            }
        }

        /// Removing a node re-homes only the keys it owned.
        #[test]
        fn leave_moves_only_the_orphaned_keys(
            seed in 0u64..=1000,
            n in 2usize..=6,
            victim in 0usize..=5,
            keys in prop::collection::vec(0u64..=u64::MAX, 1..60),
        ) {
            let victim = (victim % n) as u64;
            let before = Ring::new(seed, 16, 0..n as u64);
            let mut after = before.clone();
            after.remove_node(victim);
            for &key in &keys {
                let old = before.primary(key).unwrap();
                let new = after.primary(key).unwrap();
                if old != victim {
                    prop_assert_eq!(old, new, "key {} moved off a surviving node", key);
                }
                prop_assert!(new != victim);
            }
        }
    }
}
