//! Codec and timestamped-wave microbenchmarks: synopsis
//! serialization/deserialization cost and the timestamped variants'
//! per-item throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use waves_core::{DetWave, SumWave, TimestampSumWave, TimestampWave};
use waves_rand::{PartyMessage, RandConfig, UnionParty};
use waves_streamgen::{Bernoulli, BitSource, UniformValues, ValueSource};

fn filled_det_wave(eps: f64) -> DetWave {
    let n = 1u64 << 14;
    let mut w = DetWave::new(n, eps).unwrap();
    let mut src = Bernoulli::new(0.5, 5);
    for _ in 0..(3 * n) {
        w.push_bit(src.next_bit());
    }
    w
}

fn bench_det_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("det_wave_codec");
    for &eps in &[0.1f64, 0.02] {
        let w = filled_det_wave(eps);
        let bytes = w.encode();
        g.bench_with_input(BenchmarkId::new("encode", eps), &w, |b, w| {
            b.iter(|| w.encode())
        });
        g.bench_with_input(BenchmarkId::new("decode", eps), &bytes, |b, bytes| {
            b.iter(|| DetWave::decode(bytes).unwrap())
        });
    }
    g.finish();
}

fn bench_sum_codec(c: &mut Criterion) {
    let (n, r) = (1u64 << 12, 1u64 << 10);
    let mut w = SumWave::new(n, r, 0.05).unwrap();
    let mut src = UniformValues::new(r, 7);
    for _ in 0..(3 * n) {
        w.push_value(src.next_value()).unwrap();
    }
    let bytes = w.encode();
    let mut g = c.benchmark_group("sum_wave_codec");
    g.bench_function("encode", |b| b.iter(|| w.encode()));
    g.bench_function("decode", |b| b.iter(|| SumWave::decode(&bytes).unwrap()));
    g.finish();
}

fn bench_message_codec(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let n = 1u64 << 14;
    let cfg = RandConfig::for_positions(n, 0.1, 0.1, &mut rng).unwrap();
    let mut p = UnionParty::new(&cfg);
    let mut src = Bernoulli::new(0.5, 9);
    for _ in 0..(2 * n) {
        p.push_bit(src.next_bit());
    }
    let msg = p.message(n).unwrap();
    let bytes = msg.encode();
    let mut g = c.benchmark_group("party_message_codec");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode", |b| b.iter(|| msg.encode()));
    g.bench_function("decode", |b| {
        b.iter(|| PartyMessage::decode(&bytes).unwrap())
    });
    g.finish();
}

fn bench_timestamp_push(c: &mut Criterion) {
    const BATCH: usize = 1 << 13;
    let mut g = c.benchmark_group("timestamp_push");
    g.throughput(Throughput::Elements(BATCH as u64));
    // Pre-generate (dt, value, bit) tuples.
    let mut rng = StdRng::seed_from_u64(3);
    use rand::Rng;
    let steps: Vec<(u64, u64, bool)> = (0..BATCH)
        .map(|_| {
            (
                rng.gen_range(0..2),
                rng.gen_range(0..=255u64),
                rng.gen_bool(0.5),
            )
        })
        .collect();
    g.bench_function("timestamp_count", |b| {
        let mut w = TimestampWave::new(1 << 12, 1 << 14, 0.05).unwrap();
        let mut ts = 1u64;
        b.iter(|| {
            for &(dt, _, bit) in &steps {
                ts += dt;
                w.push(ts, bit).unwrap();
            }
            w.rank()
        });
    });
    g.bench_function("timestamp_sum", |b| {
        let mut w = TimestampSumWave::new(1 << 12, 1 << 14, 255, 0.05).unwrap();
        let mut ts = 1u64;
        b.iter(|| {
            for &(dt, v, _) in &steps {
                ts += dt;
                w.push(ts, v).unwrap();
            }
            w.total()
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_det_codec, bench_sum_codec, bench_message_codec, bench_timestamp_push
);
criterion_main!(benches);
