//! GF(2^d) substrate and level-oracle microbenchmarks (A3 ablation:
//! hardware trailing_zeros vs the weak-model ruler oracle; hash cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use waves_core::level::{rank_level, sum_level, RulerLevelOracle};
use waves_gf2::{Gf2Field, LevelHash};

const BATCH: u64 = 1 << 14;

fn bench_field_mul(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf2_field_mul");
    g.throughput(Throughput::Elements(BATCH));
    for &d in &[16u32, 32, 63] {
        let field = Gf2Field::new(d);
        g.bench_with_input(BenchmarkId::from_parameter(d), &field, |b, field| {
            b.iter(|| {
                let mut acc = 1u64;
                for i in 1..BATCH {
                    acc = field.mul(acc, field.element(i.wrapping_mul(0x9E3779B97F4A7C15)));
                }
                acc
            });
        });
    }
    g.finish();
}

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("level_hash");
    g.throughput(Throughput::Elements(BATCH));
    let mut rng = StdRng::seed_from_u64(1);
    let h = LevelHash::random(20, &mut rng);
    g.bench_function("level", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in 0..BATCH {
                acc += h.level(p) as u64;
            }
            acc
        });
    });
    g.finish();
}

fn bench_level_oracles(c: &mut Criterion) {
    // A3: hardware tz vs the weak-machine-model ruler oracle.
    let mut g = c.benchmark_group("wave_level_oracle");
    g.throughput(Throughput::Elements(BATCH));
    g.bench_function("hardware_trailing_zeros", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in 1..=BATCH {
                acc += rank_level(r) as u64;
            }
            acc
        });
    });
    g.bench_function("ruler_oracle", |b| {
        b.iter(|| {
            let mut oracle = RulerLevelOracle::new(6);
            let mut acc = 0u64;
            for _ in 1..=BATCH {
                acc += oracle.next_level() as u64;
            }
            acc
        });
    });
    g.bench_function("sum_level_bit_trick", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            let mut total = 0u64;
            for v in 1..=BATCH {
                acc += sum_level(total, v) as u64;
                total += v;
            }
            acc
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_field_mul, bench_hash, bench_level_oracles
);
criterion_main!(benches);
