//! Distinct-values wave: per-item cost across domain skew, and the
//! referee's levelwise-union combine (Theorem 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use waves_rand::{DistinctParty, DistinctReferee, RandConfig};
use waves_streamgen::{ValueSource, ZipfValues};

const N: u64 = 1 << 12;
const DOMAIN: u64 = 1 << 16;
const BATCH: usize = 1 << 12;

fn bench_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("distinct_push");
    g.throughput(Throughput::Elements(BATCH as u64));
    for &theta in &[0.0f64, 1.0, 1.5] {
        let input = ZipfValues::new(DOMAIN as usize, theta, 11).take_values(BATCH);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("zipf_{theta}")),
            &input,
            |b, input| {
                let mut rng = StdRng::seed_from_u64(1);
                let cfg = RandConfig::for_values(N, DOMAIN - 1, 0.2, 0.5, &mut rng)
                    .unwrap()
                    .with_instances(1, &mut rng);
                let mut p = DistinctParty::new(&cfg);
                b.iter(|| {
                    for &v in input {
                        p.push_value(v);
                    }
                    p.pos()
                });
            },
        );
    }
    g.finish();
}

fn bench_combine(c: &mut Criterion) {
    let mut g = c.benchmark_group("distinct_referee_combine");
    for &t in &[2usize, 8] {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = RandConfig::for_values(N, DOMAIN - 1, 0.2, 0.2, &mut rng).unwrap();
        let mut parties: Vec<DistinctParty> = (0..t).map(|_| DistinctParty::new(&cfg)).collect();
        for (j, p) in parties.iter_mut().enumerate() {
            let mut g2 = ZipfValues::new(DOMAIN as usize, 1.0, j as u64);
            for _ in 0..(2 * N) {
                p.push_value(g2.next_value());
            }
        }
        let msgs: Vec<_> = parties.iter().map(|p| p.message(N).unwrap()).collect();
        let referee = DistinctReferee::new(cfg);
        let s = parties[0].pos() + 1 - N;
        g.bench_with_input(BenchmarkId::from_parameter(t), &msgs, |b, msgs| {
            b.iter(|| referee.estimate(msgs, s));
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_push, bench_combine
);
criterion_main!(benches);
