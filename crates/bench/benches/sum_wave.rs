//! Sum wave vs EH-sum per-item throughput across value ranges R
//! (Theorem 3's timing claim, statistical companion to E6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use waves_core::SumWave;
use waves_eh::EhSum;
use waves_streamgen::{UniformValues, ValueSource};

const N: u64 = 1 << 12;
const EPS: f64 = 0.05;
const BATCH: usize = 1 << 13;

fn bench_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("sum_push");
    g.throughput(Throughput::Elements(BATCH as u64));
    for &log_r in &[4u32, 10, 16] {
        let r = 1u64 << log_r;
        let input = UniformValues::new(r, 7).take_values(BATCH);
        g.bench_with_input(
            BenchmarkId::new("sum_wave", format!("R=2^{log_r}")),
            &input,
            |b, input| {
                let mut w = SumWave::new(N, r, EPS).unwrap();
                b.iter(|| {
                    for &v in input {
                        w.push_value(v).unwrap();
                    }
                    w.total()
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("eh_sum", format!("R=2^{log_r}")),
            &input,
            |b, input| {
                let mut eh = EhSum::new(N, r, EPS).unwrap();
                b.iter(|| {
                    for &v in input {
                        eh.push_value(v).unwrap();
                    }
                    eh.pos()
                });
            },
        );
    }
    g.finish();
}

fn bench_max_values(c: &mut Criterion) {
    // Adversarial for EH-sum: every item is R (maximum fragmentation).
    let mut g = c.benchmark_group("sum_push_max_values");
    g.throughput(Throughput::Elements(BATCH as u64));
    let r = 1u64 << 16;
    let input = vec![r; BATCH];
    g.bench_function("sum_wave", |b| {
        let mut w = SumWave::new(N, r, EPS).unwrap();
        b.iter(|| {
            for &v in &input {
                w.push_value(v).unwrap();
            }
            w.total()
        });
    });
    g.bench_function("eh_sum", |b| {
        let mut eh = EhSum::new(N, r, EPS).unwrap();
        b.iter(|| {
            for &v in &input {
                eh.push_value(v).unwrap();
            }
            eh.pos()
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_push, bench_max_values
);
criterion_main!(benches);
