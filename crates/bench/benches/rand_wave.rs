//! Randomized union wave: per-item cost (expected O(1) field ops per
//! instance) and referee combine cost (Theorem 5's query bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use waves_rand::{RandConfig, Referee, UnionParty};
use waves_streamgen::{Bernoulli, BitSource};

const N: u64 = 1 << 14;
const BATCH: usize = 1 << 13;

fn bench_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("union_wave_push");
    g.throughput(Throughput::Elements(BATCH as u64));
    let input = Bernoulli::new(0.5, 3).take_bits(BATCH);
    for &instances in &[1usize, 9, 37] {
        g.bench_with_input(
            BenchmarkId::from_parameter(instances),
            &input,
            |b, input| {
                let mut rng = StdRng::seed_from_u64(1);
                let cfg = RandConfig::for_positions(N, 0.1, 0.5, &mut rng)
                    .unwrap()
                    .with_instances(instances | 1, &mut rng);
                let mut p = UnionParty::new(&cfg);
                b.iter(|| {
                    for &bit in input {
                        p.push_bit(bit);
                    }
                    p.pos()
                });
            },
        );
    }
    g.finish();
}

fn bench_combine(c: &mut Criterion) {
    let mut g = c.benchmark_group("union_referee_combine");
    for &t in &[2usize, 8, 32] {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = RandConfig::for_positions(N, 0.1, 0.1, &mut rng).unwrap();
        let mut parties: Vec<UnionParty> = (0..t).map(|_| UnionParty::new(&cfg)).collect();
        let mut src = Bernoulli::new(0.4, 9);
        for _ in 0..(2 * N) {
            let b = src.next_bit();
            for p in parties.iter_mut() {
                p.push_bit(b);
            }
        }
        let msgs: Vec<_> = parties.iter().map(|p| p.message(N).unwrap()).collect();
        let referee = Referee::new(cfg);
        let s = parties[0].pos() + 1 - N;
        g.bench_with_input(BenchmarkId::from_parameter(t), &msgs, |b, msgs| {
            b.iter(|| referee.estimate(msgs, s));
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_push, bench_combine
);
criterion_main!(benches);
