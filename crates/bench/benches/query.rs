//! Query-time benchmarks: O(1) max-window queries vs the
//! O((1/eps) log(eps N)) general-window scan (Theorem 1 / Corollary 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use waves_core::{DetWave, SumWave};
use waves_eh::EhCount;
use waves_streamgen::{Bernoulli, BitSource, UniformValues, ValueSource};

const N: u64 = 1 << 16;
const EPS: f64 = 0.02;

fn filled_wave() -> DetWave {
    let mut w = DetWave::new(N, EPS).unwrap();
    let mut src = Bernoulli::new(0.5, 5);
    for _ in 0..(3 * N) {
        w.push_bit(src.next_bit());
    }
    w
}

fn bench_query_max(c: &mut Criterion) {
    let w = filled_wave();
    let mut eh = EhCount::new(N, EPS).unwrap();
    let mut src = Bernoulli::new(0.5, 5);
    for _ in 0..(3 * N) {
        eh.push_bit(src.next_bit());
    }
    let mut g = c.benchmark_group("query_max_window");
    g.bench_function("det_wave_O1", |b| b.iter(|| w.query_max()));
    g.bench_function("eh_scan", |b| b.iter(|| eh.query(N).unwrap()));
    g.finish();
}

fn bench_query_general(c: &mut Criterion) {
    let w = filled_wave();
    let mut g = c.benchmark_group("query_general_window");
    for &n in &[N / 64, N / 8, N - 1] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| w.query(n).unwrap())
        });
    }
    g.finish();
}

fn bench_sum_query(c: &mut Criterion) {
    let r = 1u64 << 10;
    let mut w = SumWave::new(N, r, EPS).unwrap();
    let mut src = UniformValues::new(r, 9);
    for _ in 0..(3 * N) {
        w.push_value(src.next_value()).unwrap();
    }
    let mut g = c.benchmark_group("sum_query");
    g.bench_function("query_max_O1", |b| b.iter(|| w.query_max()));
    g.bench_function("query_half_window", |b| b.iter(|| w.query(N / 2).unwrap()));
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_query_max, bench_query_general, bench_sum_query
);
criterion_main!(benches);
