//! Per-item throughput: deterministic wave vs exponential histogram vs
//! exact oracle, across bit densities (E4's statistical companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use waves_core::{DetWave, ExactCount};
use waves_eh::EhCount;
use waves_streamgen::{Bernoulli, BitSource};

const N: u64 = 1 << 16;
const EPS: f64 = 0.05;
const BATCH: usize = 1 << 14;

fn bits(p: f64) -> Vec<bool> {
    Bernoulli::new(p, 42).take_bits(BATCH)
}

fn bench_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("basic_counting_push");
    g.throughput(Throughput::Elements(BATCH as u64));
    for &density in &[0.1f64, 0.5, 1.0] {
        let input = if density >= 1.0 {
            vec![true; BATCH]
        } else {
            bits(density)
        };
        g.bench_with_input(BenchmarkId::new("det_wave", density), &input, |b, input| {
            let mut w = DetWave::new(N, EPS).unwrap();
            b.iter(|| {
                for &bit in input {
                    w.push_bit(bit);
                }
                w.rank()
            });
        });
        g.bench_with_input(BenchmarkId::new("eh", density), &input, |b, input| {
            let mut eh = EhCount::new(N, EPS).unwrap();
            b.iter(|| {
                for &bit in input {
                    eh.push_bit(bit);
                }
                eh.pos()
            });
        });
        g.bench_with_input(BenchmarkId::new("exact", density), &input, |b, input| {
            let mut e = ExactCount::new(N);
            b.iter(|| {
                for &bit in input {
                    e.push_bit(bit);
                }
                e.rank()
            });
        });
    }
    g.finish();
}

fn bench_eps_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("det_wave_push_vs_eps");
    g.throughput(Throughput::Elements(BATCH as u64));
    let input = bits(0.5);
    for &inv_eps in &[4u64, 16, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(inv_eps), &input, |b, input| {
            let mut w = DetWave::new(N, 1.0 / inv_eps as f64).unwrap();
            b.iter(|| {
                for &bit in input {
                    w.push_bit(bit);
                }
                w.rank()
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_push, bench_eps_sweep
);
criterion_main!(benches);
