//! Worst-case (tail) latency measurement.
//!
//! Criterion reports distribution means; the paper's headline timing
//! claim is about the *worst case* per item (wave O(1) vs EH O(log N)
//! cascades), so this module measures per-item latency maxima and high
//! quantiles directly.

use std::time::Instant;

/// Per-item latency distribution summary, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    pub mean_ns: f64,
    pub p50_ns: f64,
    pub p999_ns: f64,
    pub max_ns: f64,
}

/// Run `op` once per item of `items`, timing each call individually.
///
/// Note: timer granularity and OS jitter put a floor/noise on per-call
/// numbers; the experiments therefore compare *distributions* between
/// implementations measured identically, and additionally report the
/// deterministic structural counters (EH cascade lengths) that are
/// jitter-free.
pub fn per_item_latency<T, F: FnMut(&T)>(items: &[T], mut op: F) -> LatencyStats {
    assert!(!items.is_empty());
    let mut samples: Vec<u64> = Vec::with_capacity(items.len());
    for it in items {
        let t0 = Instant::now();
        op(it);
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    let n = samples.len();
    let sum: u64 = samples.iter().sum();
    let q = |p: f64| samples[(((n - 1) as f64) * p) as usize] as f64;
    LatencyStats {
        mean_ns: sum as f64 / n as f64,
        p50_ns: q(0.5),
        p999_ns: q(0.999),
        max_ns: samples[n - 1] as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_ordered() {
        let items: Vec<u64> = (0..10_000).collect();
        let mut acc = 0u64;
        let s = per_item_latency(&items, |&i| {
            acc = acc.wrapping_add(i);
        });
        assert!(s.p50_ns <= s.p999_ns);
        assert!(s.p999_ns <= s.max_ns);
        assert!(s.mean_ns > 0.0);
        std::hint::black_box(acc);
    }
}
