//! Worst-case (tail) latency measurement.
//!
//! Criterion reports distribution means; the paper's headline timing
//! claim is about the *worst case* per item (wave O(1) vs EH O(log N)
//! cascades), so this module measures per-item latency maxima and high
//! quantiles directly.
//!
//! Samples land in the shared [`waves_obs::LogHistogram`], so the
//! offline harness and live `--stats` runs agree on one definition of a
//! quantile: the ceiling-rank convention of
//! [`waves_obs::HistogramSnapshot::quantile`]. (An earlier version
//! indexed the sorted samples at `floor((n - 1) * p)`, which truncates
//! the rank downward — on 1000 samples with one slow outlier it
//! reported the fast cluster as the p99.9.)

use std::time::Instant;
use waves_obs::{HistogramSnapshot, LogHistogram};

/// Per-item latency distribution summary, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    pub mean_ns: f64,
    pub p50_ns: f64,
    pub p99_ns: f64,
    pub p999_ns: f64,
    pub max_ns: f64,
}

impl LatencyStats {
    /// Summarize a histogram snapshot under the shared quantile
    /// definition. `max_ns` is exact (the histogram tracks the true
    /// maximum); the quantiles carry the bucketing's <=6.25% relative
    /// quantization error.
    pub fn from_snapshot(s: &HistogramSnapshot) -> Self {
        LatencyStats {
            mean_ns: s.mean(),
            p50_ns: s.p50(),
            p99_ns: s.p99(),
            p999_ns: s.p999(),
            max_ns: s.max as f64,
        }
    }
}

/// Run `op` once per item of `items`, timing each call individually.
///
/// Note: timer granularity and OS jitter put a floor/noise on per-call
/// numbers; the experiments therefore compare *distributions* between
/// implementations measured identically, and additionally report the
/// deterministic structural counters (EH cascade lengths) that are
/// jitter-free.
pub fn per_item_latency<T, F: FnMut(&T)>(items: &[T], mut op: F) -> LatencyStats {
    assert!(!items.is_empty());
    let hist = LogHistogram::new();
    for it in items {
        let t0 = Instant::now();
        op(it);
        hist.record(t0.elapsed().as_nanos() as u64);
    }
    LatencyStats::from_snapshot(&hist.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_ordered() {
        let items: Vec<u64> = (0..10_000).collect();
        let mut acc = 0u64;
        let s = per_item_latency(&items, |&i| {
            acc = acc.wrapping_add(i);
        });
        assert!(s.p50_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.p999_ns);
        assert!(s.p999_ns <= s.max_ns);
        assert!(s.mean_ns > 0.0);
        std::hint::black_box(acc);
    }

    #[test]
    fn quantiles_pinned_on_known_sample() {
        // 900 samples at 10ns, 99 at 100ns, 1 at 10000ns (n = 1000).
        // Ceiling ranks: p50 -> rank 500 (10ns cluster), p99 -> rank
        // 990 (100ns cluster), p999 -> rank 999 (still 100ns), max
        // exact. The old floored `(n-1) * p` index agreed on p50/p99
        // but the regression this pins is the convention itself.
        let hist = LogHistogram::new();
        hist.record_n(10, 900);
        hist.record_n(100, 99);
        hist.record(10_000);
        let s = LatencyStats::from_snapshot(&hist.snapshot());
        assert_eq!(s.p50_ns, 10.0);
        assert!(
            (s.p99_ns - 100.0).abs() / 100.0 <= 1.0 / 16.0,
            "{}",
            s.p99_ns
        );
        assert!(
            (s.p999_ns - 100.0).abs() / 100.0 <= 1.0 / 16.0,
            "{}",
            s.p999_ns
        );
        assert_eq!(s.max_ns, 10_000.0);

        // The tail case the floored index got wrong: 998 fast samples,
        // 2 slow. ceil(0.999 * 1000) = 999 lands on the first slow
        // sample; floor((999) * 0.999) = 998 (0-indexed 997) stayed in
        // the fast cluster.
        let hist = LogHistogram::new();
        hist.record_n(10, 998);
        hist.record_n(10_000, 2);
        let s = LatencyStats::from_snapshot(&hist.snapshot());
        assert!(
            s.p999_ns >= 9_000.0,
            "p999 must see the tail: {}",
            s.p999_ns
        );
        assert_eq!(s.p50_ns, 10.0);
    }

    #[test]
    fn single_sample_is_its_own_everything() {
        let s = per_item_latency(&[1u64], |_| {});
        assert!(s.p50_ns <= s.max_ns);
        let hist = LogHistogram::new();
        hist.record(42);
        let s = LatencyStats::from_snapshot(&hist.snapshot());
        assert_eq!(s.p50_ns, 42.0);
        assert_eq!(s.p99_ns, 42.0);
        assert_eq!(s.p999_ns, 42.0);
        assert_eq!(s.max_ns, 42.0);
        assert_eq!(s.mean_ns, 42.0);
    }
}
