// Experiments iterate several parallel streams in lockstep; indexed loops
// are the clearest expression of that.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]

//! `waves-bench`: the experiment harness.
//!
//! One module per experiment from DESIGN.md's per-experiment index; the
//! `experiments` binary dispatches on the experiment id. Criterion
//! benchmarks (in `benches/`) cover the statistical timing claims; the
//! modules here cover error, space, scaling, worst-case latency tails,
//! and the worked figures.

pub mod experiments;
pub mod table;
pub mod timing;
pub mod verdict;

/// All experiment ids in DESIGN.md order, with a one-line description.
pub const EXPERIMENTS: &[(&str, &str)] = &[
    (
        "fig2",
        "E1: Figure 1+2 worked example (basic wave, x-hat = 23)",
    ),
    ("fig3", "E2: Figure 3 optimal wave level contents"),
    ("det-error", "E3: Theorem 1 error sweep (eps, N, workloads)"),
    ("latency", "E4: per-item worst-case latency, wave vs EH"),
    ("space", "E5: space vs bounds (Thm 1, Thm 2 lower bound)"),
    ("sum", "E6: Theorem 3 sum wave error/space vs EH-sum"),
    (
        "lower-bound",
        "E7: Theorem 4 demonstration (collision + combine rules)",
    ),
    (
        "union",
        "E8: Theorem 5 randomized union counting (eps, delta, t)",
    ),
    ("distinct", "E9: Theorem 6 distinct values in windows"),
    (
        "predicates",
        "E10: predicate queries on the distinct sample",
    ),
    ("nth-recent", "E11: n-th most recent 1"),
    ("average", "E12: sliding average composition"),
    (
        "histogram",
        "E16: windowed histogramming + certified quantiles",
    ),
    ("scenarios", "E13: deterministic distributed scenarios 1-2"),
    ("scaling", "E14: query cost scaling in t, eps, delta"),
    (
        "hash",
        "E15: level-hash distribution and pairwise independence",
    ),
    (
        "ablate-levels",
        "A1: store-at-max-level vs store-at-all-levels",
    ),
    ("ablate-c", "A2: queue constant c vs empirical error"),
    ("ablate-estimator", "A4: midpoint vs endpoint estimators"),
    (
        "coordinated",
        "A5: coordinated sampling [18] vs waves on windows",
    ),
    (
        "obs-overhead",
        "E17: noop-recorder cost on the push hot path (<= 2%)",
    ),
    (
        "engine-scaling",
        "E18: serving-engine ingest scaling (shards x keys x batch)",
    ),
    (
        "net-loopback",
        "E19: networked ingest throughput over loopback vs batch size",
    ),
    (
        "persistence",
        "E20: WAL cost per sync policy + recovery time vs log length",
    ),
    (
        "dst-soak",
        "E21: deterministic-simulation soak over seed-derived fault schedules",
    ),
    (
        "word-ingest",
        "E22: word-packed ingest pipeline vs the bool-slice path",
    ),
    (
        "cluster-scaling",
        "E23: cluster ingest scaling across loopback nodes + replication agreement",
    ),
    (
        "net-concurrency",
        "E24: p99 request latency vs 10..10k concurrent loopback connections",
    ),
];

#[cfg(test)]
mod tests {
    #[test]
    fn experiment_ids_unique() {
        let mut ids: Vec<&str> = super::EXPERIMENTS.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), super::EXPERIMENTS.len());
    }
}
