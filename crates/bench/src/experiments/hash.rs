//! E15: the Section 4.1 hash function — exact level distribution over
//! the full domain and a pairwise-independence check over random draws.

use crate::table::{f, pct, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use waves_gf2::LevelHash;

pub fn run() {
    println!("E15 — Section 4.1: level hash distribution and pairwise independence");
    println!("====================================================================\n");

    // Exact distribution over the full domain for a fixed (q, r).
    let d = 16u32;
    let h = LevelHash::from_parts(d, 0xB5A3, 0x1CE4);
    let mut counts = vec![0u64; (d + 1) as usize];
    for p in 0..(1u64 << d) {
        counts[h.level(p) as usize] += 1;
    }
    println!("(a) exact level frequencies over all 2^{d} inputs (q, r fixed):");
    let mut t = Table::new(&["level l", "count", "expected 2^(d-l-1)", "ratio"]);
    for l in 0..=d.min(8) {
        let expected = if l < d { 1u64 << (d - l - 1) } else { 1 };
        t.row(&[
            format!("{l}"),
            format!("{}", counts[l as usize]),
            format!("{expected}"),
            f(counts[l as usize] as f64 / expected as f64),
        ]);
    }
    t.print();
    // With q != 0 the affine map is a bijection: frequencies are exact.
    for l in 0..d {
        assert_eq!(counts[l as usize], 1u64 << (d - l - 1));
    }

    // Pairwise independence over the (q, r) draw.
    println!("\n(b) pairwise independence over random (q, r): joint vs product");
    println!("    of marginals for events {{h(p) >= l}}, 30000 draws:");
    let mut t = Table::new(&["l", "Pr[A]", "Pr[B]", "Pr[A and B]", "Pr[A]*Pr[B]", "gap"]);
    let trials = 30_000u64;
    let (p1, p2) = (0x1234u64, 0xBEEFu64);
    for l in 1..=4u32 {
        let mut rng = StdRng::seed_from_u64(l as u64);
        let (mut a, mut b, mut ab) = (0u64, 0u64, 0u64);
        for _ in 0..trials {
            let h = LevelHash::random(20, &mut rng);
            let xa = h.level(p1) >= l;
            let xb = h.level(p2) >= l;
            a += xa as u64;
            b += xb as u64;
            ab += (xa && xb) as u64;
        }
        let (pa, pb, pab) = (
            a as f64 / trials as f64,
            b as f64 / trials as f64,
            ab as f64 / trials as f64,
        );
        let gap = (pab - pa * pb).abs();
        assert!(gap < 0.01, "independence gap {gap} at level {l}");
        t.row(&[
            format!("{l}"),
            pct(pa),
            pct(pb),
            pct(pab),
            pct(pa * pb),
            f(gap),
        ]);
    }
    t.print();
    println!("\nPASS: exact exponential marginals; joint factorizes within noise.");
}
