//! E3: Theorem 1 error sweep — maximum observed relative error of the
//! deterministic wave across eps, N, window sizes, and workloads,
//! against the exact oracle. The claim: max observed error <= eps,
//! always, at every instant.

use crate::table::{pct, Table};
use waves_core::{DetWave, ExactCount};
use waves_eh::EhCount;
use waves_streamgen::{AlternatingRuns, Bernoulli, BitSource, Bursty, Periodic};

fn workload(name: &str, seed: u64) -> Box<dyn BitSource> {
    match name {
        "bernoulli" => Box::new(Bernoulli::new(0.4, seed)),
        "bursty" => Box::new(Bursty::new(300.0, seed)),
        "periodic" => Box::new(Periodic::new(5, 11)),
        "runs" => Box::new(AlternatingRuns::new(80.0, seed)),
        _ => unreachable!(),
    }
}

/// Stream `steps` bits through wave + EH + oracle; return the max
/// relative error observed for (wave, eh) over the given window sizes.
fn sweep(
    source: &mut dyn BitSource,
    eps: f64,
    n_max: u64,
    steps: u64,
    windows: &[u64],
) -> (f64, f64) {
    let mut wave = DetWave::new(n_max, eps).unwrap();
    let mut eh = EhCount::new(n_max, eps).unwrap();
    let mut oracle = ExactCount::new(n_max);
    let mut worst_wave = 0.0f64;
    let mut worst_eh = 0.0f64;
    for step in 1..=steps {
        let b = source.next_bit();
        wave.push_bit(b);
        eh.push_bit(b);
        oracle.push_bit(b);
        if step % 13 == 0 || step == steps {
            for &n in windows {
                let actual = oracle.query(n);
                worst_wave = worst_wave.max(wave.query(n).unwrap().relative_error(actual));
                worst_eh = worst_eh.max(eh.query(n).unwrap().relative_error(actual));
            }
        }
    }
    (worst_wave, worst_eh)
}

pub fn run() {
    println!("E3 — Theorem 1: deterministic wave error <= eps, everywhere");
    println!("===========================================================\n");
    let mut t = Table::new(&[
        "workload",
        "eps",
        "N",
        "max err (wave)",
        "max err (EH)",
        "bound ok",
    ]);
    let mut all_ok = true;
    for name in ["bernoulli", "bursty", "periodic", "runs"] {
        for &(eps, n_max) in &[
            (0.5, 1u64 << 8),
            (0.25, 1 << 10),
            (0.1, 1 << 12),
            (0.05, 1 << 12),
        ] {
            let mut src = workload(name, 17);
            let windows = [1u64, n_max / 7 + 1, n_max / 2, n_max];
            let steps = (n_max * 12).max(20_000);
            let (w, e) = sweep(src.as_mut(), eps, n_max, steps, &windows);
            let ok = w <= eps + 1e-9 && e <= eps + 1e-9;
            all_ok &= ok;
            t.row(&[
                name.into(),
                format!("{eps}"),
                format!("{n_max}"),
                pct(w),
                pct(e),
                if ok { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    t.print();
    println!(
        "\n{}: {}",
        crate::verdict::word(all_ok),
        if all_ok {
            "every observed error within eps (both synopses deterministic-safe)"
        } else {
            "error bound violated"
        }
    );
}
