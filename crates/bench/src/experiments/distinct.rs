//! E9 / E10: Theorem 6 — distinct values in sliding windows over
//! distributed streams, and predicate queries on the distinct sample.

use crate::table::{f, pct, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use waves_rand::{estimate_distinct, DistinctParty, DistinctReferee, RandConfig};
use waves_streamgen::{overlapping_value_streams, ValueSource, ZipfValues};

fn exact_distinct(streams: &[Vec<u64>], n: u64) -> u64 {
    let len = streams[0].len();
    let mut last: HashMap<u64, usize> = HashMap::new();
    for i in 0..len {
        for s in streams {
            last.insert(s[i], i);
        }
    }
    let s0 = len.saturating_sub(n as usize);
    last.values().filter(|&&i| i >= s0).count() as u64
}

pub fn run() {
    println!("E9 — Theorem 6: distinct values in a sliding window, distributed");
    println!("================================================================\n");
    println!("(windows hold several thousand distinct values — far more than one");
    println!(" queue — so the level sampling really engages; 9 instances/median)\n");
    let (len, n) = (12_000usize, 4_096u64);
    let domain = 1u64 << 18;
    let mut t = Table::new(&[
        "workload",
        "t",
        "eps",
        "actual",
        "estimate",
        "rel err",
        "elems/party",
    ]);
    for &(theta, name) in &[(0.3f64, "zipf(0.3)"), (1.1, "zipf(1.1)")] {
        for &tp in &[1usize, 4] {
            for &eps in &[0.2f64, 0.1] {
                // Per-party Zipf draws over a shared domain; parties use
                // different seeds so their supports overlap partially.
                let streams: Vec<Vec<u64>> = if theta < 1.0 && tp > 1 {
                    overlapping_value_streams(tp, len, domain, 0.3, 9 + tp as u64)
                } else {
                    (0..tp)
                        .map(|j| {
                            let mut g = ZipfValues::new(domain as usize, theta, 9 + j as u64);
                            (0..len).map(|_| g.next_value()).collect()
                        })
                        .collect()
                };
                let actual = exact_distinct(&streams, n) as f64;
                let mut rng = StdRng::seed_from_u64(tp as u64 * 7 + (eps * 100.0) as u64);
                let cfg = RandConfig::for_values(n, domain - 1, eps, 0.05, &mut rng)
                    .unwrap()
                    .with_instances(9, &mut rng);
                let mut parties: Vec<DistinctParty> =
                    (0..tp).map(|_| DistinctParty::new(&cfg)).collect();
                for i in 0..len {
                    for (j, p) in parties.iter_mut().enumerate() {
                        p.push_value(streams[j][i]);
                    }
                }
                let stored = parties[0].stored();
                let referee = DistinctReferee::new(cfg);
                let est = estimate_distinct(&referee, &parties, n).unwrap();
                let rel = (est - actual).abs() / actual;
                assert!(rel <= eps, "{name} t={tp} eps={eps}: {est} vs {actual}");
                t.row(&[
                    name.into(),
                    format!("{tp}"),
                    format!("{eps}"),
                    f(actual),
                    f(est),
                    pct(rel),
                    format!("{stored}"),
                ]);
            }
        }
    }
    t.print();
    println!("\nPASS: all within eps; per-party state independent of window content.");
}

pub fn predicates() {
    println!("E10 — predicates on the distinct-values sample (Section 5)");
    println!("==========================================================\n");
    let (len, n) = (24_000usize, 8_192u64);
    let domain = 1u64 << 18;
    let eps = 0.15;
    let mut rng = StdRng::seed_from_u64(5);
    let cfg = RandConfig::for_values(n, domain - 1, eps, 0.05, &mut rng)
        .unwrap()
        .with_instances(9, &mut rng);
    let mut party = DistinctParty::new(&cfg);
    let mut g = ZipfValues::new(domain as usize, 0.3, 3);
    let stream: Vec<u64> = (0..len).map(|_| g.next_value()).collect();
    for &v in &stream {
        party.push_value(v);
    }
    let mut last: HashMap<u64, u64> = HashMap::new();
    for (i, &v) in stream.iter().enumerate() {
        last.insert(v, i as u64 + 1);
    }
    let s = len as u64 + 1 - n;
    let referee = DistinctReferee::new(cfg);
    let msg = vec![party.message(n).unwrap()];

    let preds: Vec<(&str, f64, Box<dyn Fn(u64) -> bool>)> = vec![
        ("v % 2 == 0 (alpha~0.5)", 0.5, Box::new(|v| v % 2 == 0)),
        ("v % 4 == 0 (alpha~0.25)", 0.25, Box::new(|v| v % 4 == 0)),
        (
            "v < domain/8 (alpha~0.125)",
            0.125,
            Box::new(move |v| v < domain / 8),
        ),
        ("v % 10 == 0 (alpha~0.1)", 0.1, Box::new(|v| v % 10 == 0)),
    ];
    let mut t = Table::new(&[
        "predicate",
        "actual",
        "estimate",
        "rel err",
        "eps/alpha budget",
    ]);
    for (name, alpha, pred) in &preds {
        let actual = last.iter().filter(|&(&v, &p)| p >= s && pred(v)).count() as f64;
        let est = referee.estimate_predicate(&msg, s, Some(pred.as_ref()));
        let rel = (est - actual).abs() / actual.max(1.0);
        // Section 5: guarantee costs a 1/alpha factor in sample size, so
        // at fixed space the error budget scales like eps/sqrt(alpha).
        let budget = eps / alpha.sqrt();
        t.row(&[name.to_string(), f(actual), f(est), pct(rel), pct(budget)]);
        assert!(rel <= budget, "{name}: {rel} > {budget}");
    }
    t.print();
    println!("\nPASS: predicate error grows as selectivity alpha shrinks, within");
    println!("the eps/sqrt(alpha) budget at fixed space (Section 5's trade-off).");
}
