//! E18: serving-engine ingest scaling across shards, keys, and batches.
//!
//! The engine's pitch is that per-key synopses parallelize trivially:
//! keys hash to independent shard threads, so ingest throughput should
//! grow as shards are added until the single producer thread becomes
//! the bottleneck. This experiment replays a pre-generated keyed
//! workload (so generation cost is off the clock) through engines with
//! 1/2/4 shards, across two key-population sizes and two ingest batch
//! sizes, and reports best-of-reps throughput.
//!
//! Acceptance lines:
//! * throughput must increase monotonically from 1 to 4 shards on the
//!   100k-key workload (the headline claim);
//! * an engine reporting into a live `MetricsRegistry` must stay within
//!   the workspace's 2% observability budget — engine metrics are
//!   recorded per *batch*, not per bit, so the cost amortizes away.

use crate::table::{f, Table};
use std::sync::Arc;
use std::time::Instant;
use waves_engine::{Engine, EngineConfig, IngestRequest, KeyedBits};
use waves_obs::MetricsRegistry;
use waves_streamgen::KeyedWorkload;

const REPS: usize = 3;
const EVENTS: u64 = 200_000;
const BITS_PER_EVENT: usize = 32;
const WINDOW: u64 = 256;
const EPS: f64 = 0.2;

fn make_batches(num_keys: u64, batch: usize) -> Vec<Vec<KeyedBits>> {
    let mut workload = KeyedWorkload::new(num_keys, BITS_PER_EVENT, 0.5, 18);
    let mut batches = Vec::new();
    let mut remaining = EVENTS;
    while remaining > 0 {
        let n = remaining.min(batch as u64) as usize;
        batches.push(workload.next_packed_batch(n));
        remaining -= n as u64;
    }
    batches
}

fn engine_cfg(shards: usize) -> EngineConfig {
    EngineConfig::builder()
        .num_shards(shards)
        .max_window(WINDOW)
        .eps(EPS)
        .build()
}

/// One blocking replay (every batch plus the flush barrier, so all work
/// is on the clock); returns throughput in Mbit/s.
fn one_run(shards: usize, batches: &[Vec<KeyedBits>]) -> f64 {
    let engine = Engine::new(engine_cfg(shards)).unwrap();
    let t0 = Instant::now();
    for b in batches {
        engine
            .ingest(IngestRequest::batch(b.clone()).blocking(true))
            .unwrap();
    }
    engine.flush();
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(engine.dropped_items(), 0, "blocking path must not shed");
    (EVENTS as usize * BITS_PER_EVENT) as f64 / secs / 1e6
}

/// Same measurement with a live metrics registry attached.
fn one_run_recorded(shards: usize, batches: &[Vec<KeyedBits>]) -> f64 {
    let reg = Arc::new(MetricsRegistry::new());
    let engine = Engine::new_recorded(engine_cfg(shards), Arc::clone(&reg)).unwrap();
    let t0 = Instant::now();
    for b in batches {
        engine
            .ingest(IngestRequest::batch(b.clone()).blocking(true))
            .unwrap();
    }
    engine.flush();
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(reg.snapshot());
    (EVENTS as usize * BITS_PER_EVENT) as f64 / secs / 1e6
}

/// Best-of-`REPS` throughput.
fn best_tput(shards: usize, batches: &[Vec<KeyedBits>]) -> f64 {
    (0..REPS).fold(0.0f64, |best, _| best.max(one_run(shards, batches)))
}

pub fn run() {
    println!("E18 — engine ingest scaling (shards x keys x batch)");
    println!("===================================================\n");
    println!("{EVENTS} events x {BITS_PER_EVENT} bits, DetWave(N={WINDOW}, eps={EPS}) per key,");
    println!("blocking ingest + flush, best of {REPS} reps.\n");

    let shard_counts = [1usize, 2, 4];
    let mut t = Table::new(&[
        "keys",
        "batch",
        "1 shard Mbit/s",
        "2 shards",
        "4 shards",
        "4-vs-1",
    ]);
    for &num_keys in &[10_000u64, 100_000] {
        for &batch in &[32usize, 256] {
            let batches = make_batches(num_keys, batch);
            let tputs: Vec<f64> = shard_counts
                .iter()
                .map(|&s| best_tput(s, &batches))
                .collect();
            t.row(&[
                format!("{num_keys}"),
                format!("{batch}"),
                f(tputs[0]),
                f(tputs[1]),
                f(tputs[2]),
                format!("{:.2}x", tputs[2] / tputs[0]),
            ]);
        }
    }
    t.print();

    // Headline acceptance on the 100k-key workload. Shard counts are
    // interleaved round-robin across extra reps (E17's trick) so noise
    // and frequency drift hit every configuration alike.
    let batches = make_batches(100_000, 256);
    let mut headline = [0.0f64; 3];
    for _ in 0..(2 * REPS) {
        for (i, &s) in shard_counts.iter().enumerate() {
            headline[i] = headline[i].max(one_run(s, &batches));
        }
    }
    let monotone = headline.windows(2).all(|w| w[1] > w[0]);
    // The parallel-speedup claim needs at least as many cores as shards;
    // on a smaller machine the shard threads time-slice one core and the
    // comparison measures only scheduler noise, so report SKIP rather
    // than a fake verdict either way.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let verdict = if cores >= 4 {
        crate::verdict::word(monotone).to_string()
    } else {
        crate::verdict::skip(format!(
            "{cores} core(s) available; the speedup claim needs >= 4"
        ))
    };
    println!(
        "\nmonotone 1 -> 2 -> 4 shard speedup at 100k keys: {} — {}",
        shard_counts
            .iter()
            .zip(headline)
            .map(|(s, tp)| format!("{s}:{tp:.0}"))
            .collect::<Vec<_>>()
            .join("  "),
        verdict
    );

    // Observability budget: engine metrics are recorded per batch, so
    // live recording must be indistinguishable from the noop engine at
    // realistic batch sizes. Interleaved best-of, as above; extra reps
    // because cross-thread measurements are the noisiest in the suite.
    let (mut noop, mut live) = (0.0f64, 0.0f64);
    for _ in 0..(3 * REPS) {
        noop = noop.max(one_run(4, &batches));
        live = live.max(one_run_recorded(4, &batches));
    }
    let overhead = 100.0 * (noop - live) / noop;
    println!(
        "\nlive-metrics ingest overhead at 4 shards: {overhead:+.2}% (budget: <= 2%) — {}",
        crate::verdict::word(overhead <= 2.0)
    );
    println!("\nExpected shape: near-linear speedup 1 -> 4 shards while per-bit");
    println!("synopsis work dominates; small batches pay more channel overhead,");
    println!("and the 10k-key rows run slightly hotter caches than 100k.");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature version of the measurement: the harness must replay
    /// everything losslessly and produce a positive throughput.
    #[test]
    fn tiny_sweep_replays_losslessly() {
        let mut workload = KeyedWorkload::new(100, 8, 0.5, 18);
        let batches: Vec<_> = (0..10).map(|_| workload.next_packed_batch(16)).collect();
        for shards in [1usize, 2] {
            let engine = Engine::new(engine_cfg(shards)).unwrap();
            for b in &batches {
                engine
                    .ingest(IngestRequest::batch(b.clone()).blocking(true))
                    .unwrap();
            }
            engine.flush();
            assert_eq!(engine.dropped_items(), 0);
            let snap = engine.snapshot();
            assert_eq!(snap.shards.len(), shards);
            assert!(snap.keys() > 0 && snap.keys() <= 100);
        }
    }
}
