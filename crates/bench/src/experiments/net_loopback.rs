//! E19: networked ingest throughput over loopback vs. batch size.
//!
//! The wire layer's cost model is simple: every request pays one
//! round-trip (syscall + frame header + scheduler handoff), so ingest
//! throughput should be dominated by how many bits each round-trip
//! amortizes. This experiment replays the same keyed workload through a
//! loopback `waves-net` client/server pair at increasing ingest batch
//! sizes, alongside an in-process engine replaying identical batches as
//! the no-network oracle, and reports best-of-reps throughput plus the
//! per-frame overhead the network adds.
//!
//! Acceptance lines:
//! * throughput must increase monotonically from batch 16 to batch 1024
//!   (bigger batches amortize the fixed per-frame cost);
//! * the networked answer must equal the local oracle's answer exactly
//!   (the wire moves bits, it must not change them).

use crate::table::{f, Table};
use std::time::Instant;
use waves_engine::{Engine, EngineConfig, IngestRequest, KeyedBits};
use waves_net::{Client, ClientConfig, Server, ServerConfig};
use waves_streamgen::KeyedWorkload;

const REPS: usize = 3;
const EVENTS: u64 = 20_000;
const BITS_PER_EVENT: usize = 32;
const NUM_KEYS: u64 = 1_000;
const WINDOW: u64 = 256;
const EPS: f64 = 0.2;
const SHARDS: usize = 2;

fn engine_cfg() -> EngineConfig {
    EngineConfig::builder()
        .num_shards(SHARDS)
        .max_window(WINDOW)
        .eps(EPS)
        .queue_capacity(4096)
        .build()
}

fn make_batches(batch: usize) -> Vec<Vec<KeyedBits>> {
    let mut workload = KeyedWorkload::new(NUM_KEYS, BITS_PER_EVENT, 0.5, 19);
    let mut batches = Vec::new();
    let mut remaining = EVENTS;
    while remaining > 0 {
        let n = remaining.min(batch as u64) as usize;
        batches.push(workload.next_packed_batch(n));
        remaining -= n as u64;
    }
    batches
}

/// One networked replay: ingest every batch over the wire, flush, and
/// return (Mbit/s, estimate for key 0).
fn one_net_run(server_addr: std::net::SocketAddr, batches: &[Vec<KeyedBits>]) -> (f64, f64) {
    let mut client = Client::connect_with(server_addr, ClientConfig::default()).unwrap();
    let t0 = Instant::now();
    for b in batches {
        client.ingest(IngestRequest::batch(b.clone())).unwrap();
    }
    client.flush().unwrap();
    let secs = t0.elapsed().as_secs_f64();
    let est = client.query(0, WINDOW).unwrap();
    (
        (EVENTS as usize * BITS_PER_EVENT) as f64 / secs / 1e6,
        est.value,
    )
}

/// The in-process oracle: identical batches through a local engine.
fn one_local_run(batches: &[Vec<KeyedBits>]) -> (f64, f64) {
    let engine = Engine::new(engine_cfg()).unwrap();
    let t0 = Instant::now();
    for b in batches {
        engine
            .ingest(IngestRequest::batch(b.clone()).blocking(true))
            .unwrap();
    }
    engine.flush();
    let secs = t0.elapsed().as_secs_f64();
    let est = engine.query(0, WINDOW).unwrap();
    (
        (EVENTS as usize * BITS_PER_EVENT) as f64 / secs / 1e6,
        est.value,
    )
}

pub fn run() {
    println!("E19 — networked ingest throughput over loopback vs batch size");
    println!("=============================================================\n");
    println!("{EVENTS} events x {BITS_PER_EVENT} bits over {NUM_KEYS} keys,");
    println!("DetWave(N={WINDOW}, eps={EPS}) per key, {SHARDS} shards, best of {REPS} reps.\n");

    // One server for the whole sweep: each run uses fresh keys? No —
    // runs accumulate into the same engine, which is fine for a
    // throughput measurement but not for the answer check. The answer
    // check below uses a dedicated fresh server.
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            engine: engine_cfg(),
            read_timeout: None,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let batch_sizes = [16usize, 64, 256, 1024];
    let mut t = Table::new(&["batch", "frames", "net Mbit/s", "local Mbit/s", "net/local"]);
    let mut headline = Vec::new();
    for &batch in &batch_sizes {
        let batches = make_batches(batch);
        let mut net = 0.0f64;
        let mut local = 0.0f64;
        for _ in 0..REPS {
            net = net.max(one_net_run(addr, &batches).0);
            local = local.max(one_local_run(&batches).0);
        }
        headline.push(net);
        t.row(&[
            format!("{batch}"),
            format!("{}", batches.len() + 1),
            f(net),
            f(local),
            format!("{:.3}", net / local),
        ]);
    }
    t.print();
    drop(server);

    let monotone = headline.windows(2).all(|w| w[1] > w[0]);
    println!(
        "\nmonotone batch 16 -> 1024 speedup: {} — {}",
        batch_sizes
            .iter()
            .zip(&headline)
            .map(|(b, tp)| format!("{b}:{tp:.0}"))
            .collect::<Vec<_>>()
            .join("  "),
        crate::verdict::word(monotone)
    );

    // Answer fidelity: a fresh server fed one workload must agree with
    // a fresh local engine fed the same workload, exactly.
    let batches = make_batches(256);
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            engine: engine_cfg(),
            read_timeout: None,
            ..Default::default()
        },
    )
    .unwrap();
    let (_, net_answer) = one_net_run(server.local_addr(), &batches);
    let (_, local_answer) = one_local_run(&batches);
    println!(
        "\nnetworked answer == local oracle: {net_answer} vs {local_answer} — {}",
        crate::verdict::word(net_answer == local_answer)
    );
    println!("\nExpected shape: throughput grows with batch size as the fixed");
    println!("per-frame round-trip cost amortizes; net/local approaches 1 only");
    println!("for large batches, and small batches are syscall-bound.");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miniature E19: the networked path and the local oracle agree on
    /// the answer, and the harness replays everything.
    #[test]
    fn net_and_local_agree() {
        let batches = make_batches(64);
        let server = Server::start(
            "127.0.0.1:0",
            ServerConfig {
                engine: engine_cfg(),
                read_timeout: None,
                ..Default::default()
            },
        )
        .unwrap();
        let (net_tput, net_answer) = one_net_run(server.local_addr(), &batches);
        let (local_tput, local_answer) = one_local_run(&batches);
        assert!(net_tput > 0.0 && local_tput > 0.0);
        assert_eq!(net_answer, local_answer);
    }
}
