//! E23: cluster ingest scaling across loopback nodes.
//!
//! `waves-cluster` routes keys over N servers by consistent hash, so
//! ingest work — per-bit synopsis maintenance in each server's shard
//! threads — should spread across nodes while the single client thread
//! pays only wire round trips. This experiment replays a pre-generated
//! keyed workload through 1/2/3-node clusters (replication 1, so the
//! measurement isolates routing, not replica shipping), flush barrier
//! on the clock, best-of-reps interleaved round-robin so noise hits
//! every node count alike.
//!
//! Acceptance lines:
//! * ingest throughput at 3 nodes ≥ 1.6× the 1-node baseline — only
//!   meaningful with ≥ 4 cores (3 server processes + client); fewer
//!   cores time-slice the node threads and measure scheduler noise, so
//!   the verdict is an honest SKIP there;
//! * on any machine: after ingest + flush + a replication round on an
//!   R=2 cluster, sampled keys answer bit-identically to the client's
//!   shadow synopsis (correctness is never SKIPped).

use crate::table::{f, Table};
use std::time::Instant;
use waves_cluster::{ClusterClient, ClusterConfig};
use waves_core::Bits;
use waves_engine::EngineConfig;
use waves_net::{Server, ServerConfig};
use waves_streamgen::KeyedWorkload;

const REPS: usize = 3;
const EVENTS: u64 = 20_000;
const BITS_PER_EVENT: usize = 32;
const WINDOW: u64 = 256;
const EPS: f64 = 0.2;
const KEYS: u64 = 64;

fn make_events() -> Vec<(u64, Bits)> {
    let mut workload = KeyedWorkload::new(KEYS, BITS_PER_EVENT, 0.5, 23);
    workload.next_packed_batch(EVENTS as usize)
}

fn start_servers(n: usize) -> Vec<Server> {
    let ecfg = EngineConfig::builder()
        .num_shards(2)
        .max_window(WINDOW)
        .eps(EPS)
        .build();
    (0..n)
        .map(|_| {
            Server::start(
                "127.0.0.1:0",
                ServerConfig {
                    engine: ecfg.clone(),
                    read_timeout: None,
                    ..Default::default()
                },
            )
            .expect("server start")
        })
        .collect()
}

fn cluster_cfg(replication: usize) -> ClusterConfig {
    ClusterConfig {
        replication,
        ring_seed: 23,
        max_window: WINDOW,
        eps: EPS,
        ..Default::default()
    }
}

/// One blocking replay through an n-node cluster; returns Mbit/s with
/// the flush barrier on the clock.
fn one_run(nodes: usize, events: &[(u64, Bits)]) -> f64 {
    let servers = start_servers(nodes);
    let addrs = servers.iter().map(|s| s.local_addr()).collect();
    let mut client = ClusterClient::new(addrs, cluster_cfg(1)).expect("cluster client");
    let t0 = Instant::now();
    for (key, bits) in events {
        client.ingest(*key, bits.clone()).expect("healthy ingest");
    }
    client.flush().expect("flush");
    let secs = t0.elapsed().as_secs_f64();
    for s in servers {
        s.shutdown();
    }
    (EVENTS as usize * BITS_PER_EVENT) as f64 / secs / 1e6
}

pub fn run() {
    println!("E23 — cluster ingest scaling (nodes on loopback)");
    println!("================================================\n");
    println!("{EVENTS} events x {BITS_PER_EVENT} bits over {KEYS} keys,");
    println!("DetWave(N={WINDOW}, eps={EPS}), replication 1, ingest + flush");
    println!("on the clock, best of {REPS} interleaved reps.\n");

    let events = make_events();
    let node_counts = [1usize, 2, 3];
    let mut best = [0.0f64; 3];
    for _ in 0..REPS {
        for (i, &n) in node_counts.iter().enumerate() {
            best[i] = best[i].max(one_run(n, &events));
        }
    }
    let mut t = Table::new(&["nodes", "Mbit/s", "vs 1 node"]);
    for (i, &n) in node_counts.iter().enumerate() {
        t.row(&[
            format!("{n}"),
            f(best[i]),
            format!("{:.2}x", best[i] / best[0]),
        ]);
    }
    t.print();

    // The scaling claim needs the three server processes and the client
    // on their own cores; fewer cores time-slice them and the ratio
    // measures only scheduler noise.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let speedup = best[2] / best[0];
    let verdict = if cores >= 4 {
        crate::verdict::word(speedup >= 1.6).to_string()
    } else {
        crate::verdict::skip(format!(
            "{cores} core(s) available; the speedup claim needs >= 4"
        ))
    };
    println!("\n3-node speedup over 1 node: {speedup:.2}x (bar: >= 1.6x) — {verdict}");

    // Correctness never skips: an R=2 cluster must answer sampled keys
    // bit-identically to the client's shadow after a replication round.
    let servers = start_servers(3);
    let addrs = servers.iter().map(|s| s.local_addr()).collect();
    let mut client = ClusterClient::new(addrs, cluster_cfg(2)).expect("cluster client");
    for (key, bits) in &events {
        client.ingest(*key, bits.clone()).expect("healthy ingest");
    }
    client.flush().expect("flush");
    let shipped = client.replicate_all();
    let mut agree = true;
    for key in (0..KEYS).step_by(7) {
        let got = client.query(key, WINDOW).expect("query");
        let want = client.shadow_query(key, WINDOW).expect("shadow");
        agree &= got == want;
    }
    for s in servers {
        s.shutdown();
    }
    println!(
        "R=2 replication round shipped {shipped} installs; sampled answers == shadow — {}",
        crate::verdict::word(agree)
    );
    println!("\nExpected shape: near-linear gains while per-bit synopsis work");
    println!("dominates the wire; the single ingest thread caps scaling once");
    println!("round-trip latency does.");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miniature version of the measurement on one node: lossless
    /// replay, positive throughput, and shadow agreement.
    #[test]
    fn tiny_cluster_replays_losslessly() {
        let mut workload = KeyedWorkload::new(8, 8, 0.5, 23);
        let events = workload.next_packed_batch(64);
        let servers = start_servers(2);
        let addrs = servers.iter().map(|s| s.local_addr()).collect();
        let mut client = ClusterClient::new(addrs, cluster_cfg(2)).expect("cluster client");
        for (key, bits) in &events {
            client.ingest(*key, bits.clone()).expect("ingest");
        }
        client.flush().expect("flush");
        client.replicate_all();
        for key in 0..8 {
            let got = client.query(key, WINDOW).expect("query");
            let want = client.shadow_query(key, WINDOW).expect("shadow");
            assert_eq!(got, want, "key={key}");
        }
        for s in servers {
            s.shutdown();
        }
    }
}
