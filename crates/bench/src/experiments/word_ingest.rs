//! E22: word-packed ingest vs. the bool-slice path.
//!
//! The word-packed redesign claims the ingest pipeline moves 64 bits
//! per instruction instead of one bool per step. The measurement splits
//! where the engine splits: the **transport** (wire entry encode ->
//! validating decode -> WAL record framing with its CRC) is what the
//! ingesting thread pays before shard threads take over, and the
//! **apply** stage (synopsis update) is what a shard thread pays per
//! batch. Both are replayed single-threaded over identical streams in
//! both currencies:
//!
//! * **bool-slice path** — the pre-redesign currency: one byte per bit
//!   on the wire (a serialized bool slice), per-byte validating decode
//!   into `Vec<bool>`, the old MSB-first per-bit WAL packing, and a
//!   `push_bit` loop into the synopsis;
//! * **word path** — `Bits` end to end: whole-`u64`-word wire entries
//!   (the v4 `INGEST` encoding, byte-identical to the format-2 WAL
//!   record), and one `push_words` call into the synopsis.
//!
//! Acceptance lines:
//! * transport must be >= 10x faster on a sparse (p=0.01) stream and on
//!   a dense (p=0.9) stream — whole-word copies beat per-byte loops
//!   regardless of what the bits say;
//! * sparse apply must be >= 10x faster on both synopses — zero runs
//!   cost O(1) per word through `push_words`, per-call through
//!   `push_bit` (dense apply is reported, not gated: at p=0.9 both
//!   currencies converge to the same per-1 insertion work);
//! * the v4 wire payload must be >= 6x smaller than the bool-slice
//!   payload for the same batch (it is ~8x: 8 bytes per 64 bits vs 64).

use crate::table::{f, Table};
use std::time::Instant;
use waves_core::bits::Bits;
use waves_core::{codec, BitSynopsis, DetWave, ExactCount};
use waves_store::wal;
use waves_streamgen::{Bernoulli, BitSource};

const ENTRY_BITS: usize = 1 << 16;
const ENTRIES: usize = 16;
const WINDOW: u64 = 1 << 14;
const EPS: f64 = 0.1;
const REPS: usize = 5;

/// One pre-generated batch in both currencies (identical bit streams).
struct Workload {
    bools: Vec<(u64, Vec<bool>)>,
    words: Vec<(u64, Bits)>,
}

fn workload(p: f64, seed: u64) -> Workload {
    let mut src = Bernoulli::new(p, seed);
    let bools: Vec<(u64, Vec<bool>)> = (0..ENTRIES as u64)
        .map(|k| (k, src.take_bits(ENTRY_BITS)))
        .collect();
    let words = bools
        .iter()
        .map(|(k, bits)| (*k, Bits::from_bools(bits)))
        .collect();
    Workload { bools, words }
}

/// The bool-slice wire payload: count, then per entry key + bit count +
/// one byte per bit. This is what shipping the engine's old
/// `Vec<bool>` currency verbatim costs.
fn encode_bool(batch: &[(u64, Vec<bool>)]) -> Vec<u8> {
    let total: usize = batch.iter().map(|(_, b)| b.len()).sum();
    let mut p = Vec::with_capacity(4 + batch.len() * 16 + total);
    p.extend((batch.len() as u32).to_be_bytes());
    for (key, bits) in batch {
        p.extend(key.to_be_bytes());
        p.extend((bits.len() as u64).to_be_bytes());
        p.extend(bits.iter().map(|&b| b as u8));
    }
    p
}

/// Per-byte validating decode of [`encode_bool`]'s payload.
fn decode_bool(payload: &[u8]) -> Vec<(u64, Vec<bool>)> {
    let mut at = 4usize;
    let count = u32::from_be_bytes(payload[0..4].try_into().unwrap());
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let key = u64::from_be_bytes(payload[at..at + 8].try_into().unwrap());
        let n = u64::from_be_bytes(payload[at + 8..at + 16].try_into().unwrap()) as usize;
        at += 16;
        let bits: Vec<bool> = payload[at..at + n]
            .iter()
            .map(|&b| match b {
                0 => false,
                1 => true,
                other => panic!("invalid bool byte {other}"),
            })
            .collect();
        at += n;
        out.push((key, bits));
    }
    out
}

/// Bool-slice transport: wire encode -> validating decode -> per-bit
/// MSB-first WAL packing + CRC framing. Returns seconds.
fn transport_bool(batch: &[(u64, Vec<bool>)]) -> f64 {
    let mut wal_buf = Vec::new();
    let t0 = Instant::now();
    let payload = encode_bool(batch);
    let decoded = decode_bool(&payload);
    wal_buf.clear();
    for (_, bits) in &decoded {
        codec::pack_bits(bits, &mut wal_buf);
    }
    std::hint::black_box(wal::frame_record(&wal_buf));
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(decoded);
    secs
}

/// Word transport: v4 wire entry encode -> decode -> the same bytes
/// framed as a format-2 WAL record. Returns seconds.
fn transport_words(batch: &[(u64, Bits)]) -> f64 {
    let t0 = Instant::now();
    let payload = wal::encode_batch_payload(batch);
    let decoded = wal::decode_batch_payload(&payload).unwrap();
    std::hint::black_box(wal::frame_record(&payload));
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(decoded);
    secs
}

/// Apply a pre-decoded batch bit by bit. Returns seconds.
fn apply_bool<S: BitSynopsis>(syn: &mut S, batch: &[(u64, Vec<bool>)]) -> f64 {
    let t0 = Instant::now();
    for (_, bits) in batch {
        for &b in bits {
            syn.push_bit(b);
        }
    }
    t0.elapsed().as_secs_f64()
}

/// Apply a pre-decoded batch through `push_words`. Returns seconds.
fn apply_words<S: BitSynopsis>(syn: &mut S, batch: &[(u64, Bits)]) -> f64 {
    let t0 = Instant::now();
    for (_, bits) in batch {
        syn.push_words(bits.as_ref());
    }
    t0.elapsed().as_secs_f64()
}

fn best<FB: FnMut() -> f64>(mut run: FB) -> f64 {
    (0..REPS).fold(f64::INFINITY, |best, _| best.min(run()))
}

pub fn run() {
    println!("E22 — word-packed ingest vs bool-slice path");
    println!("===========================================\n");
    let total_bits = (ENTRIES * ENTRY_BITS) as f64;
    println!(
        "{ENTRIES} entries x {ENTRY_BITS} bits ({:.1} Mbit per replay), best of {REPS} reps.\n",
        total_bits / 1e6
    );

    let densities = [("sparse p=0.01", 0.01), ("dense p=0.9", 0.9)];

    // Transport: what the ingesting thread pays end to end.
    println!("transport (wire encode -> decode -> WAL framing):\n");
    let mut transport_speedups = Vec::new();
    let mut t = Table::new(&["stream", "bool Mbit/s", "word Mbit/s", "speedup"]);
    for (i, &(label, p)) in densities.iter().enumerate() {
        let w = workload(p, 22 + i as u64);
        let bool_secs = best(|| transport_bool(&w.bools));
        let word_secs = best(|| transport_words(&w.words));
        let speedup = bool_secs / word_secs;
        transport_speedups.push((label, speedup));
        t.row(&[
            label.into(),
            f(total_bits / bool_secs / 1e6),
            f(total_bits / word_secs / 1e6),
            format!("{speedup:.1}x"),
        ]);
    }
    t.print();

    // Apply: what a shard thread pays, per synopsis.
    println!("\napply (synopsis update on a pre-decoded batch):\n");
    let mut sparse_apply = Vec::new();
    let mut t = Table::new(&[
        "synopsis",
        "stream",
        "push_bit Mbit/s",
        "push_words Mbit/s",
        "speedup",
    ]);
    for (i, &(label, p)) in densities.iter().enumerate() {
        let w = workload(p, 22 + i as u64);
        let exact_bool = best(|| apply_bool(&mut ExactCount::new(WINDOW), &w.bools));
        let exact_word = best(|| apply_words(&mut ExactCount::new(WINDOW), &w.words));
        let wave_bool = best(|| apply_bool(&mut DetWave::new(WINDOW, EPS).unwrap(), &w.bools));
        let wave_word = best(|| apply_words(&mut DetWave::new(WINDOW, EPS).unwrap(), &w.words));
        if p < 0.5 {
            sparse_apply.push(("ExactCount", exact_bool / exact_word));
            sparse_apply.push(("DetWave", wave_bool / wave_word));
        }
        t.row(&[
            "ExactCount".into(),
            label.into(),
            f(total_bits / exact_bool / 1e6),
            f(total_bits / exact_word / 1e6),
            format!("{:.1}x", exact_bool / exact_word),
        ]);
        t.row(&[
            "DetWave".into(),
            label.into(),
            f(total_bits / wave_bool / 1e6),
            f(total_bits / wave_word / 1e6),
            format!("{:.1}x", wave_bool / wave_word),
        ]);
    }
    t.print();

    // Payload sizes for one batch: the bool-slice wire, the old v3
    // MSB-first bit packing, and the v4 whole-word encoding.
    println!();
    let w = workload(0.5, 24);
    let bool_bytes = encode_bool(&w.bools).len();
    let v3_bytes: usize = w
        .bools
        .iter()
        .map(|(_, b)| {
            let mut buf = Vec::new();
            codec::pack_bits(b, &mut buf);
            16 + buf.len()
        })
        .sum::<usize>()
        + 4;
    let word_bytes = wal::encode_batch_payload(&w.words).len();
    let shrink = bool_bytes as f64 / word_bytes as f64;
    let mut t = Table::new(&["encoding", "payload bytes", "vs bool-slice"]);
    t.row(&[
        "bool slice (1 byte/bit)".into(),
        bool_bytes.to_string(),
        "1.0x".into(),
    ]);
    t.row(&[
        "v3 MSB-first packed bits".into(),
        v3_bytes.to_string(),
        format!("{:.2}x", bool_bytes as f64 / v3_bytes as f64),
    ]);
    t.row(&[
        "v4 LE u64 words".into(),
        word_bytes.to_string(),
        format!("{shrink:.2}x"),
    ]);
    t.print();

    for (label, speedup) in &transport_speedups {
        println!(
            "\ntransport >= 10x on {label}: {speedup:.1}x — {}",
            crate::verdict::word(*speedup >= 10.0)
        );
    }
    for (synopsis, speedup) in &sparse_apply {
        println!(
            "\nsparse apply >= 10x on {synopsis}: {speedup:.1}x — {}",
            crate::verdict::word(*speedup >= 10.0)
        );
    }
    println!(
        "\nv4 payload >= 6x smaller than bool-slice: {shrink:.2}x — {}",
        crate::verdict::word(shrink >= 6.0)
    );
    println!("\nExpected shape: transport speedup is density-independent (whole-");
    println!("word copies and a sliced CRC vs three per-byte loops); sparse apply");
    println!("wins because zero runs collapse to O(1) per word; dense apply sits");
    println!("near parity — every 1 still pays the same insertion both ways.");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two apply paths must observe identical streams: same query
    /// answer out of the exact counter either way.
    #[test]
    fn bool_and_word_applies_agree() {
        let w = workload(0.3, 7);
        let mut a = ExactCount::new(WINDOW);
        apply_bool(&mut a, &w.bools);
        let mut b = ExactCount::new(WINDOW);
        let decoded = wal::decode_batch_payload(&wal::encode_batch_payload(&w.words)).unwrap();
        apply_words(&mut b, &decoded);
        assert_eq!(a.query(WINDOW), b.query(WINDOW));
    }

    /// The bool-slice codec round-trips (it is the baseline under
    /// measurement, so it must be correct, not just slow).
    #[test]
    fn bool_codec_roundtrips() {
        let w = workload(0.5, 9);
        assert_eq!(decode_bool(&encode_bool(&w.bools)), w.bools);
    }
}
