//! E6: Theorem 3 — the sum wave vs the EH-sum baseline: error, space,
//! per-item cost across value ranges R.

use crate::table::{f, pct, Table};
use crate::timing::per_item_latency;
use waves_core::{ExactSum, SumWave};
use waves_eh::EhSum;
use waves_streamgen::{SpikeValues, UniformValues, ValueSource};

pub fn run() {
    println!("E6 — Theorem 3: sums of integers in [0..R] in a sliding window");
    println!("==============================================================\n");

    // Error + space sweep.
    let mut t = Table::new(&[
        "workload",
        "eps",
        "R",
        "max err (wave)",
        "max err (EH)",
        "wave bits",
        "EH bits",
        "wave entries",
        "EH buckets",
    ]);
    let n = 1u64 << 10;
    for &(wname, seed) in &[("uniform", 5u64), ("spiky", 6)] {
        for &eps in &[0.25f64, 0.1, 0.05] {
            for &log_r in &[4u32, 10, 16, 20] {
                let r = 1u64 << log_r;
                let mut gen: Box<dyn ValueSource> = match wname {
                    "uniform" => Box::new(UniformValues::new(r, seed)),
                    _ => Box::new(SpikeValues::new(r, 0.02, seed)),
                };
                let mut wave = SumWave::new(n, r, eps).unwrap();
                let mut eh = EhSum::new(n, r, eps).unwrap();
                let mut oracle = ExactSum::new(n);
                let (mut we, mut ee) = (0.0f64, 0.0f64);
                for step in 1..=20_000u64 {
                    let v = gen.next_value();
                    wave.push_value(v).unwrap();
                    eh.push_value(v).unwrap();
                    oracle.push_value(v);
                    if step % 17 == 0 {
                        let actual = oracle.query(n);
                        we = we.max(wave.query_max().relative_error(actual));
                        ee = ee.max(eh.query(n).unwrap().relative_error(actual));
                    }
                }
                assert!(we <= eps + 1e-9 && ee <= eps + 1e-9);
                t.row(&[
                    wname.into(),
                    format!("{eps}"),
                    format!("2^{log_r}"),
                    pct(we),
                    pct(ee),
                    f(wave.space_report().synopsis_bits as f64),
                    f(eh.space_report().synopsis_bits as f64),
                    format!("{}", wave.entries()),
                    format!("{}", eh.buckets()),
                ]);
            }
        }
    }
    t.print();

    // Per-item cost: the wave stores each item once; EH fragments it.
    println!("\nper-item cost on max-value items (N = 2^12, R = 2^16, eps = 0.05):");
    let (n, r, eps) = (1u64 << 12, 1u64 << 16, 0.05);
    let items: Vec<u64> = vec![r; 1 << 16];
    let mut wave = SumWave::new(n, r, eps).unwrap();
    for _ in 0..(1 << 13) {
        wave.push_value(r).unwrap();
    }
    let ws = per_item_latency(&items, |&v| {
        wave.push_value(v).unwrap();
    });
    let mut eh = EhSum::new(n, r, eps).unwrap();
    for _ in 0..(1 << 13) {
        eh.push_value(r).unwrap();
    }
    let es = per_item_latency(&items, |&v| {
        eh.push_value(v).unwrap();
    });
    let mut t = Table::new(&[
        "synopsis",
        "mean ns",
        "p50 ns",
        "p99 ns",
        "p99.9 ns",
        "max ns",
        "max cascade",
    ]);
    t.row(&[
        "sum-wave".into(),
        f(ws.mean_ns),
        f(ws.p50_ns),
        f(ws.p99_ns),
        f(ws.p999_ns),
        f(ws.max_ns),
        "1 level/item".into(),
    ]);
    t.row(&[
        "eh-sum".into(),
        f(es.mean_ns),
        f(es.p50_ns),
        f(es.p99_ns),
        f(es.p999_ns),
        f(es.max_ns),
        format!("{}", eh.max_cascade()),
    ]);
    t.print();
    println!("\nExpected shape: both within eps; wave stores one entry per item");
    println!("(O(1) worst case) while EH spreads large items over many classes.");
}
