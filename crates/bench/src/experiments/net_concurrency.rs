//! E24: request latency vs. concurrent loopback connections.
//!
//! The event-loop server's claim is that concurrency is cheap: one
//! poller thread multiplexes every socket, so the p99 latency of a
//! request arriving while 10k mostly-idle connections sit registered
//! must stay within 2x of the p99 with 10 connections. (The
//! thread-per-connection design this replaced degrades here first: 10k
//! parked threads cost stacks and scheduler pressure before they cost
//! socket time.) This experiment connects C clients over loopback,
//! drives a fixed total of one-shot requests round-robin across them —
//! every request rides the pipelined wire path, `exchange` being a
//! window-1 pipeline — and reports p50/p99 latency and throughput per
//! concurrency level, plus the amortized per-request cost of a deep
//! `send_many` burst at that level.
//!
//! Honesty notes:
//! * below 4 cores the event loop, the dispatch pool, and the driver
//!   threads all contend for the same CPU, so the sweep measures the
//!   scheduler instead of the server — the experiment SKIPs;
//! * both socket ends live in this process, so the fd budget caps the
//!   sweep at roughly (soft limit - margin) / 2 connections; levels
//!   past that are dropped with a log line, never silently.

use crate::table::{f, Table};
use crate::verdict;
use std::time::Instant;
use waves_engine::EngineConfig;
use waves_net::{Client, ClientConfig, Frame, RetryPolicy, Server, ServerConfig};

/// Concurrency sweep: spans three decades so a per-connection cost
/// (epoll is O(ready), not O(registered)) would show up as a trend.
const LEVELS: &[usize] = &[10, 100, 1_000, 10_000];
/// One-shot requests per level, spread round-robin over the level's
/// connections — constant load, varying idle fan-out.
const TOTAL_REQUESTS: usize = 20_000;
/// Depth of the pipelined burst measured alongside the one-shots.
const PIPELINE_BURST: usize = 512;
const PIPELINE_WINDOW: usize = 64;
/// Driver threads; also the number of requests actually in flight at
/// once. Kept modest so the measured quantity stays "latency under
/// idle fan-out", not "driver-side queueing".
const DRIVERS: usize = 32;
/// Descriptors reserved for everything that is not a sweep socket.
const FD_MARGIN: usize = 256;
const MIN_CORES: usize = 4;
/// The acceptance bar: p99 at the deepest level vs. the shallowest.
const FLATNESS_BAR: f64 = 2.0;

fn server_cfg() -> ServerConfig {
    ServerConfig {
        engine: EngineConfig::builder()
            .num_shards(2)
            .max_window(64)
            .eps(0.25)
            .build(),
        read_timeout: None,
        max_connections: 16_384,
        ..Default::default()
    }
}

fn client_cfg() -> ClientConfig {
    ClientConfig {
        connect_timeout: std::time::Duration::from_secs(10),
        read_timeout: std::time::Duration::from_secs(10),
        write_timeout: std::time::Duration::from_secs(10),
        retry: RetryPolicy::none(),
    }
}

/// `q`-th percentile of an already-sorted sample, nearest-rank.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Hold `c` open connections and drive `total` one-shot pings
/// round-robin across them from [`DRIVERS`] threads. Returns every
/// request's latency (ns, sorted), the wall time of the request phase
/// (connect storms excluded — a barrier separates them), and the
/// pipelined burst's amortized ns/request measured *while* the level's
/// connections are still registered with the poller.
fn sweep_level(addr: std::net::SocketAddr, c: usize, total: usize) -> (Vec<u64>, f64, f64) {
    use std::sync::{mpsc, Arc, Barrier};
    let drivers = c.min(DRIVERS);
    let rounds = (total / c).max(1);
    // `start` separates the connect storm from the timed request phase;
    // `done` keeps every connection open until the pipelined burst has
    // been measured against the fully-loaded poller.
    let start = Arc::new(Barrier::new(drivers + 1));
    let done = Arc::new(Barrier::new(drivers + 1));
    let (tx, rx) = mpsc::channel::<Vec<u64>>();
    let handles: Vec<_> = (0..drivers)
        .map(|d| {
            // Driver d owns connections d, d+drivers, d+2*drivers, ...
            let n_conns = c / drivers + usize::from(d < c % drivers);
            let (start, done, tx) = (Arc::clone(&start), Arc::clone(&done), tx.clone());
            std::thread::spawn(move || {
                let mut conns: Vec<Client> = (0..n_conns)
                    .map(|_| Client::connect_with(addr, client_cfg()).expect("connect"))
                    .collect();
                start.wait();
                let mut lat = Vec::with_capacity(n_conns * rounds);
                for _ in 0..rounds {
                    for conn in conns.iter_mut() {
                        let t0 = Instant::now();
                        conn.ping().expect("ping");
                        lat.push(t0.elapsed().as_nanos() as u64);
                    }
                }
                tx.send(lat).expect("collector lives");
                done.wait();
            })
        })
        .collect();
    drop(tx);
    start.wait();
    let t0 = Instant::now();
    let mut all = Vec::with_capacity(total);
    // Exactly one latency vector per driver — the drivers still hold
    // their channel ends while parked on `done`, so draining until
    // disconnect would deadlock.
    for _ in 0..drivers {
        all.extend(rx.recv().expect("driver panicked"));
    }
    let wall = t0.elapsed().as_secs_f64();
    let pipelined = pipelined_ns_per_req(addr);
    done.wait();
    for h in handles {
        h.join().expect("driver panicked");
    }
    all.sort_unstable();
    (all, wall, pipelined)
}

/// Amortized per-request cost of one deep pipelined burst: a single
/// extra connection fires [`PIPELINE_BURST`] pings with
/// [`PIPELINE_WINDOW`] in flight.
fn pipelined_ns_per_req(addr: std::net::SocketAddr) -> f64 {
    let mut client = Client::connect_with(addr, client_cfg()).expect("connect");
    let pings: Vec<Frame> = (0..PIPELINE_BURST).map(|_| Frame::Ping).collect();
    let t0 = Instant::now();
    let replies = client.send_many(&pings, PIPELINE_WINDOW).expect("pipeline");
    assert_eq!(replies.len(), PIPELINE_BURST);
    t0.elapsed().as_nanos() as f64 / PIPELINE_BURST as f64
}

pub fn run() {
    println!("E24 — request latency vs concurrent loopback connections");
    println!("=========================================================\n");

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < MIN_CORES {
        println!(
            "flat p99 under idle fan-out: {}",
            verdict::skip(format!(
                "needs >= {MIN_CORES} cores, have {cores}: the event loop, dispatch \
                 pool, and driver threads would contend for one CPU and the sweep \
                 would measure the scheduler, not the server"
            ))
        );
        return;
    }
    let fd_budget = match poll::raise_nofile_limit() {
        Ok(soft) => soft as usize,
        Err(e) => {
            println!("note: could not raise RLIMIT_NOFILE ({e}); using the current soft limit");
            poll::nofile_limit()
                .map(|(s, _)| s as usize)
                .unwrap_or(1024)
        }
    };
    let levels: Vec<usize> = LEVELS
        .iter()
        .copied()
        .filter(|&c| 2 * c + FD_MARGIN <= fd_budget)
        .collect();
    for &c in LEVELS {
        if !levels.contains(&c) {
            println!(
                "dropping level {c}: both socket ends live here and \
                 2*{c}+{FD_MARGIN} exceeds the fd limit ({fd_budget})"
            );
        }
    }
    println!(
        "{TOTAL_REQUESTS} one-shot pings round-robin over C connections, {} drivers,",
        DRIVERS
    );
    println!("{cores} cores, fd budget {fd_budget}; pipelined burst: {PIPELINE_BURST} pings, window {PIPELINE_WINDOW}.\n");

    let server = Server::start("127.0.0.1:0", server_cfg()).unwrap();
    let addr = server.local_addr();

    let mut t = Table::new(&["conns", "p50 us", "p99 us", "kreq/s", "pipelined ns/req"]);
    let mut p99s = Vec::new();
    for &c in &levels {
        let (lat, wall, pipelined) = sweep_level(addr, c, TOTAL_REQUESTS);
        let p50 = percentile(&lat, 0.50);
        let p99 = percentile(&lat, 0.99);
        p99s.push(p99);
        t.row(&[
            format!("{c}"),
            f(p50 as f64 / 1e3),
            f(p99 as f64 / 1e3),
            f(lat.len() as f64 / wall / 1e3),
            f(pipelined),
        ]);
    }
    t.print();
    drop(server);

    match (p99s.first(), p99s.last()) {
        (Some(&first), Some(&last)) if p99s.len() >= 2 => {
            let ratio = last as f64 / first as f64;
            println!(
                "\np99 {} conns / p99 {} conns = {ratio:.2} (bar {FLATNESS_BAR}): {}",
                levels[levels.len() - 1],
                levels[0],
                verdict::word(ratio <= FLATNESS_BAR)
            );
        }
        _ => println!(
            "\nflat p99 under idle fan-out: {}",
            verdict::skip("fewer than two concurrency levels fit the fd budget")
        ),
    }
    println!("\nExpected shape: p50 and p99 stay flat across the sweep — epoll");
    println!("readiness is O(ready sockets), so registered-but-idle connections");
    println!("cost a hash-map slot, not latency; the pipelined burst amortizes");
    println!("syscalls and lands well under the one-shot round-trip.");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miniature E24 machinery check, independent of core count: a
    /// 4-connection sweep returns one latency per request and the
    /// pipelined burst path completes.
    #[test]
    fn sweep_machinery_works() {
        let server = Server::start("127.0.0.1:0", server_cfg()).unwrap();
        let (lat, wall, pipelined) = sweep_level(server.local_addr(), 4, 64);
        assert_eq!(lat.len(), 64);
        assert!(lat.windows(2).all(|w| w[0] <= w[1]), "not sorted");
        assert!(wall > 0.0);
        assert!(pipelined > 0.0);
        assert!(percentile(&lat, 0.99) >= percentile(&lat, 0.50));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [10u64, 20, 30, 40];
        assert_eq!(percentile(&sorted, 0.50), 20);
        assert_eq!(percentile(&sorted, 0.99), 40);
        assert_eq!(percentile(&[7], 0.99), 7);
    }
}
