//! E7: the Theorem 4 lower bound, demonstrated.
//!
//! (i) a constructed synopsis collision: two different inputs with
//! identical deterministic-wave states whose union counts differ by
//! Theta(n) — the pigeonhole core of the proof;
//! (ii) an error sweep of every natural deterministic combine rule over
//! the Hamming-pair family, against the randomized wave at equal
//! space, which stays within eps.

use crate::table::{f, pct, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use waves_core::DetWave;
use waves_distributed::{det_combine, DetCombine};
use waves_rand::{estimate_union, RandConfig, Referee, UnionParty};
use waves_streamgen::hamming_pair;

fn wave_state(bits: &[bool], n: u64, eps: f64) -> Vec<(u64, u64)> {
    let mut w = DetWave::new(n, eps).unwrap();
    for &b in bits {
        w.push_bit(b);
    }
    let mut st: Vec<(u64, u64)> = w.level_contents().into_iter().flatten().collect();
    st.push((w.pos(), w.rank()));
    st
}

pub fn run() {
    println!("E7 — Theorem 4: deterministic Union Counting needs Omega(n) space");
    println!("=================================================================\n");

    // (i) Constructed collision.
    println!("(i) synopsis collision (n = 1024, eps = 1/2):");
    let len = 1024usize;
    let n = len as u64;
    let mut x1 = vec![false; len];
    for r in 1..=len / 2 {
        x1[2 * r - 1] = true;
    }
    let mut w = DetWave::new(n, 0.5).unwrap();
    for &b in &x1 {
        w.push_bit(b);
    }
    let stored: std::collections::HashSet<u64> = w
        .level_contents()
        .into_iter()
        .flatten()
        .map(|(_, r)| r)
        .collect();
    let mut x2 = vec![false; len];
    let mut moved = 0usize;
    for r in 1..=(len / 2) as u64 {
        if stored.contains(&r) {
            x2[(2 * r - 1) as usize] = true;
        } else {
            x2[(2 * r - 2) as usize] = true;
            moved += 1;
        }
    }
    assert_eq!(wave_state(&x1, n, 0.5), wave_state(&x2, n, 0.5));
    let forced = moved as f64 / 2.0;
    let rel = forced / (len as f64 / 2.0 + moved as f64);
    println!(
        "  inputs differ in {} positions, synopses identical",
        2 * moved
    );
    println!(
        "  union(X1, X1) = {}, union(X1, X2) = {}",
        len / 2,
        len / 2 + moved
    );
    println!(
        "  any referee is forced into absolute error >= {forced} (relative {}) >> 1/64",
        pct(rel)
    );
    assert!(rel > 1.0 / 64.0);

    // (ii) Combine-rule sweep vs the randomized wave.
    println!("\n(ii) deterministic combine rules on the Hamming-pair family (n = 4096):");
    let len = 4096usize;
    let mut t = Table::new(&[
        "H(X,Y)",
        "union",
        "sum rule",
        "max rule",
        "indep rule",
        "rand wave (eps=0.1)",
    ]);
    let mut worst = [0.0f64; 3];
    let mut worst_rand = 0.0f64;
    for &dist in &[0usize, len / 8, len / 2, len] {
        let (x, y) = hamming_pair(len, dist, 3);
        let actual = (len / 2 + dist / 2) as f64;
        let counts = [len as f64 / 2.0, len as f64 / 2.0];
        let rules = [DetCombine::Sum, DetCombine::Max, DetCombine::Independent];
        let ests: Vec<f64> = rules
            .iter()
            .map(|&r| det_combine(r, &counts, len as u64))
            .collect();
        for (i, &e) in ests.iter().enumerate() {
            worst[i] = worst[i].max((e - actual).abs() / actual);
        }
        let mut rng = StdRng::seed_from_u64(dist as u64 + 1);
        let cfg = RandConfig::for_positions(len as u64, 0.1, 0.05, &mut rng).unwrap();
        let mut pa = UnionParty::new(&cfg);
        let mut pb = UnionParty::new(&cfg);
        for i in 0..len {
            pa.push_bit(x[i]);
            pb.push_bit(y[i]);
        }
        let referee = Referee::new(cfg);
        let rand_est = estimate_union(&referee, &[pa, pb], len as u64).unwrap();
        worst_rand = worst_rand.max((rand_est - actual).abs() / actual);
        t.row(&[
            format!("{dist}"),
            f(actual),
            f(ests[0]),
            f(ests[1]),
            f(ests[2]),
            f(rand_est),
        ]);
    }
    t.print();
    println!(
        "\nworst relative errors: sum {}, max {}, independent {}, randomized wave {}",
        pct(worst[0]),
        pct(worst[1]),
        pct(worst[2]),
        pct(worst_rand)
    );
    assert!(worst.iter().all(|&w| w > 1.0 / 64.0));
    assert!(worst_rand <= 0.1);
    println!("\nPASS: every deterministic rule violates eps = 1/64 somewhere on the");
    println!("family; the randomized wave is within eps = 0.1 everywhere.");
}
