//! E11 / E12: the Section 5 extensions — n-th most recent 1 and the
//! sliding average composition.

use crate::table::{f, pct, Table};
use std::collections::VecDeque;
use waves_core::{NthRecentWave, SlidingAverage};
use waves_streamgen::{Bernoulli, BitSource, CallDurations, ValueSource};

pub fn nth_recent() {
    println!("E11 — Section 5: position of the n-th most recent 1");
    println!("===================================================\n");
    let (max_age, eps) = (1u64 << 16, 0.1);
    let mut wave = NthRecentWave::new(max_age, eps).unwrap();
    let mut truth: VecDeque<u64> = VecDeque::new();
    let mut src = Bernoulli::new(0.08, 23);
    let mut pos = 0u64;
    for _ in 0..300_000u64 {
        pos += 1;
        let b = src.next_bit();
        wave.push_bit(b);
        if b {
            truth.push_back(pos);
        }
        while truth.front().is_some_and(|&p| p + max_age <= pos) {
            truth.pop_front();
        }
    }
    let mut t = Table::new(&["n", "actual age", "interval", "estimate", "rel err"]);
    let mut worst = 0.0f64;
    for n in [1u64, 3, 10, 30, 100, 300, 1_000, 3_000] {
        if (truth.len() as u64) < n {
            continue;
        }
        let actual = pos - truth[truth.len() - n as usize];
        let est = wave.query_age(n).unwrap().expect("within history");
        assert!(est.brackets(actual));
        let rel = if actual > 0 {
            est.relative_error(actual)
        } else {
            0.0
        };
        worst = worst.max(rel);
        t.row(&[
            format!("{n}"),
            format!("{actual}"),
            format!("[{}, {}]", est.lo, est.hi),
            f(est.value),
            pct(rel),
        ]);
    }
    t.print();
    println!(
        "\nmax observed relative error on ages: {} <= eps = {eps}",
        pct(worst)
    );
    assert!(worst <= eps + 1e-9);
    println!("PASS");
}

pub fn histogram() {
    use waves_core::WindowedHistogram;
    println!("E16 — Section 5: windowed histogramming and certified quantiles");
    println!("===============================================================\n");
    let (n, r, buckets, eps) = (4_096u64, (1u64 << 16) - 1, 16usize, 0.02);
    let mut hist = WindowedHistogram::equi_width(n, r, buckets, eps).unwrap();
    let mut window: VecDeque<u64> = VecDeque::new();
    let mut gen = CallDurations::new(r, 13);
    for _ in 0..60_000u64 {
        let v = gen.next_value();
        hist.push_value(v).unwrap();
        window.push_back(v);
        if window.len() as u64 > n {
            window.pop_front();
        }
    }
    println!("(a) per-bucket counts vs exact (log-uniform values, eps = {eps}):");
    let mut t = Table::new(&["bucket", "range", "actual", "estimate", "rel err"]);
    let ests = hist.query(n).unwrap();
    let mut worst = 0.0f64;
    for (b, est) in ests.iter().enumerate() {
        let (lo, hi) = hist.bucket_range(b);
        let actual = window.iter().filter(|&&v| v >= lo && v <= hi).count() as u64;
        assert!(est.brackets(actual));
        let rel = est.relative_error(actual);
        worst = worst.max(rel);
        if b % 3 == 0 || rel == worst {
            t.row(&[
                format!("{b}"),
                format!("[{lo}, {hi}]"),
                format!("{actual}"),
                f(est.value),
                pct(rel),
            ]);
        }
    }
    t.print();
    assert!(worst <= eps + 1e-9);
    println!("worst bucket error {} <= eps\n", pct(worst));

    println!("(b) certified quantile ranges:");
    let mut sorted: Vec<u64> = window.iter().copied().collect();
    sorted.sort_unstable();
    let mut t = Table::new(&["q", "exact", "certified range"]);
    for q in [0.25f64, 0.5, 0.9, 0.99] {
        let idx = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        let exact = sorted[idx];
        let (lo, hi) = hist.query_quantile(n, q).unwrap().unwrap();
        assert!(lo <= exact && exact <= hi, "q={q}");
        t.row(&[format!("{q}"), format!("{exact}"), format!("[{lo}, {hi}]")]);
    }
    t.print();
    let space = hist.space_report();
    println!(
        "\nspace: {} entries / {} bits across {} buckets (exact window: {} values)",
        space.entries,
        space.synopsis_bits,
        hist.buckets(),
        n
    );
    println!("PASS: buckets within eps; every quantile range certified");
}

pub fn average() {
    println!("E12 — Section 5: sliding average via sum/count at eps/(2+eps)");
    println!("=============================================================\n");
    let window = 1_024u64;
    let eps = 0.2;
    let mut avg = SlidingAverage::with_eps(window, 1 << 14, 10_000, eps).unwrap();
    let mut items: Vec<(u64, u64)> = Vec::new();
    let mut gen = CallDurations::new(10_000, 31);
    let mut rng_state = 99u64;
    let mut ts = 0u64;
    let mut t = Table::new(&["timestamp", "actual avg", "estimate", "interval", "rel err"]);
    let mut worst = 0.0f64;
    for step in 1..=60_000u64 {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ts += (rng_state >> 60) % 3;
        if ts == 0 {
            ts = 1;
        }
        let v = gen.next_value();
        avg.push(ts, v).unwrap();
        items.push((ts, v));
        if step % 10_000 == 0 {
            let s = ts.saturating_sub(window - 1);
            let in_w: Vec<u64> = items
                .iter()
                .filter(|&&(t0, _)| t0 >= s)
                .map(|&(_, v)| v)
                .collect();
            if in_w.is_empty() {
                continue;
            }
            let actual = in_w.iter().sum::<u64>() as f64 / in_w.len() as f64;
            if let Some(r) = avg.query().unwrap() {
                let rel = r.relative_error(actual);
                worst = worst.max(rel);
                t.row(&[
                    format!("{ts}"),
                    f(actual),
                    f(r.value),
                    format!("[{}, {}]", f(r.lo), f(r.hi)),
                    pct(rel),
                ]);
            }
        }
    }
    t.print();
    println!(
        "\nmax observed relative error: {} <= eps = {eps} (components at eps/(2+eps) = {})",
        pct(worst),
        f(waves_core::ratio_error_target(eps))
    );
    assert!(worst <= eps + 1e-9);
    println!("PASS");
}
