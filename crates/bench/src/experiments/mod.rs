//! Experiment implementations, one module per DESIGN.md entry.

pub mod ablations;
pub mod cluster_scaling;
pub mod det_error;
pub mod distinct;
pub mod dst_soak;
pub mod engine_scaling;
pub mod extensions;
pub mod figures;
pub mod hash;
pub mod latency;
pub mod lower_bound;
pub mod net_concurrency;
pub mod net_loopback;
pub mod obs_overhead;
pub mod persistence;
pub mod push_pull;
pub mod scaling;
pub mod scenarios;
pub mod space;
pub mod sum;
pub mod union;
pub mod word_ingest;

/// Dispatch an experiment by id. Returns false for an unknown id.
pub fn run(id: &str) -> bool {
    match id {
        "fig2" => figures::fig2(),
        "fig3" => figures::fig3(),
        "det-error" => det_error::run(),
        "latency" => latency::run(),
        "space" => space::run(),
        "sum" => sum::run(),
        "lower-bound" => lower_bound::run(),
        "union" => union::run(),
        "distinct" => distinct::run(),
        "predicates" => distinct::predicates(),
        "nth-recent" => extensions::nth_recent(),
        "average" => extensions::average(),
        "histogram" => extensions::histogram(),
        "scenarios" => scenarios::run(),
        "scaling" => scaling::run(),
        "hash" => hash::run(),
        "ablate-levels" => ablations::levels(),
        "ablate-c" => ablations::queue_constant(),
        "ablate-estimator" => ablations::estimator(),
        "coordinated" => ablations::coordinated(),
        "obs-overhead" => obs_overhead::run(),
        "engine-scaling" => engine_scaling::run(),
        "net-loopback" => net_loopback::run(),
        "net-concurrency" => net_concurrency::run(),
        "persistence" => persistence::run(),
        "dst-soak" => dst_soak::run(),
        "word-ingest" => word_ingest::run(),
        "cluster-scaling" => cluster_scaling::run(),
        "push-vs-pull" => push_pull::run(),
        _ => return false,
    }
    true
}
