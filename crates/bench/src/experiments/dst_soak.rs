//! E21: deterministic-simulation soak.
//!
//! Runs seed-derived fault schedules (`waves-dst`) through the full
//! engine + net + store stack, tallying what the seeds exercised —
//! fault injections, WAL kills, restarts — and how many oracle checks
//! they survived. Any violation prints the `DST FAILURE` report with a
//! minimized schedule and turns the headline verdict FAIL, which the
//! `experiments` binary converts into a nonzero exit for CI.
//!
//! Seed count defaults to 120; override with `WAVES_DST_SOAK_SEEDS`
//! (the CI smoke keeps it small, the nightly soak turns it up).

use crate::table::Table;
use crate::verdict;
use waves_dst::{run_or_minimize, Schedule, Step};

const DEFAULT_SEEDS: u64 = 120;

pub fn run() {
    let seeds: u64 = std::env::var("WAVES_DST_SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEEDS);
    println!("E21: deterministic-simulation soak, seeds 0..{seeds}\n");

    let (mut steps, mut checks) = (0u64, 0u64);
    let (mut ingests, mut queries, mut chaos, mut crashes, mut restarts) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let (mut persist_seeds, mut tcp_seeds) = (0u64, 0u64);
    let mut violations = 0u64;

    for seed in 0..seeds {
        let sched = Schedule::from_seed(seed);
        persist_seeds += sched.cfg.persist as u64;
        tcp_seeds += sched.cfg.tcp as u64;
        for step in &sched.steps {
            match step {
                Step::Ingest { .. } => ingests += 1,
                Step::Query { .. } => queries += 1,
                Step::Chaos { .. } => chaos += 1,
                Step::Crash { .. } => crashes += 1,
                Step::Restart => restarts += 1,
                _ => {}
            }
        }
        match run_or_minimize(&sched) {
            Ok(report) => {
                steps += report.steps as u64;
                checks += report.checks;
            }
            Err(failure) => {
                violations += 1;
                println!("{failure}\n");
            }
        }
    }

    let mut t = Table::new(&["what", "count"]);
    t.row(&["seeds".into(), seeds.to_string()]);
    t.row(&["  with persistence".into(), persist_seeds.to_string()]);
    t.row(&["  behind TCP".into(), tcp_seeds.to_string()]);
    t.row(&["steps executed".into(), steps.to_string()]);
    t.row(&["  ingest batches".into(), ingests.to_string()]);
    t.row(&["  oracle-checked queries".into(), queries.to_string()]);
    t.row(&["  chaos exchanges".into(), chaos.to_string()]);
    t.row(&["  WAL kills".into(), crashes.to_string()]);
    t.row(&["  restarts".into(), restarts.to_string()]);
    t.row(&["oracle checks passed".into(), checks.to_string()]);
    t.row(&["violations".into(), violations.to_string()]);
    t.print();

    println!(
        "\nzero oracle violations across {seeds} seeds: {} — {}",
        if violations == 0 { "yes" } else { "no" },
        verdict::word(violations == 0)
    );
    println!("\nExpected shape: every seed passes; a failure here is a real bug");
    println!("(or a planted mutant) and the printed seed replays it exactly via");
    println!("`waves dst --seed <n>`.");
}
