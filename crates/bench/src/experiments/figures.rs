//! E1 / E2: reproduce Figures 1–3 and the Section 3.1 worked example.

use waves_core::{BasicWave, DetWave};
use waves_streamgen::figure1_stream;

/// E1: the basic wave of Figure 2 over the Figure 1 stream, with the
/// n = 39 query walk-through (x-hat = 23, actual 20).
pub fn fig2() {
    println!("E1 — Figure 1 + Figure 2: basic wave, eps = 1/3, N = 48");
    println!("======================================================\n");
    let stream = figure1_stream();
    let ones = stream.iter().filter(|&&b| b).count();
    println!("Figure 1 stream: {} bits, {} ones", stream.len(), ones);

    let mut wave = BasicWave::new(48, 1.0 / 3.0).unwrap();
    for &b in &stream {
        wave.push_bit(b);
    }
    println!("pos = {}, rank = {}\n", wave.pos(), wave.rank());
    println!("wave levels (1-ranks, oldest -> newest; positions in parens):");
    for (i, lv) in wave.level_contents().iter().enumerate() {
        let cells: Vec<String> = lv.iter().map(|&(p, r)| format!("{r}({p})")).collect();
        println!("  by 2^{i}: {}", cells.join("  "));
    }

    let est = wave.query(39).unwrap();
    let actual = stream[60..].iter().filter(|&&b| b).count();
    println!("\nquery n = 39 (window positions [61, 99]):");
    println!("  paper: p1 = 44, p2 = 67, r1 = 24, r2 = 32, x-hat = 23, actual 20");
    println!(
        "  ours : interval [{}, {}], x-hat = {}, actual {}",
        est.lo, est.hi, est.value, actual
    );
    println!(
        "  relative error {:.4} <= eps = {:.4}",
        est.relative_error(actual as u64),
        1.0 / 3.0
    );
    assert_eq!(est.value, 23.0);
    assert_eq!(actual, 20);
    println!("\nPASS: worked example reproduced exactly");
}

/// E2: the optimal wave of Figure 3 (store-at-max-level layout) over the
/// same stream.
pub fn fig3() {
    println!("E2 — Figure 3: optimal deterministic wave, eps = 1/3, N = 48");
    println!("============================================================\n");
    let stream = figure1_stream();
    let mut wave = DetWave::new(48, 1.0 / 3.0).unwrap();
    for &b in &stream {
        wave.push_bit(b);
    }
    println!(
        "pos = {}, rank = {}, levels = {}, entries = {}",
        wave.pos(),
        wave.rank(),
        wave.num_levels(),
        wave.entries()
    );
    println!("(positions older than pos - N = 51 are expired, per Section 3.2;");
    println!(" Figure 3 keeps them only to show the full level shapes)\n");
    println!("level contents (1-rank(position)):");
    for (i, lv) in wave.level_contents().iter().enumerate() {
        let cells: Vec<String> = lv.iter().map(|&(p, r)| format!("{r}({p})")).collect();
        println!("  level {i}: {}", cells.join("  "));
    }
    let est = wave.query(39).unwrap();
    let actual = 20u64;
    println!(
        "\nquery n = 39: interval [{}, {}], x-hat = {}, actual {actual}",
        est.lo, est.hi, est.value
    );
    assert!(est.relative_error(actual) <= 1.0 / 3.0);
    let space = wave.space_report();
    println!(
        "space: {} entries, {} synopsis bits",
        space.entries, space.synopsis_bits
    );
    println!("\nPASS: store-at-max-level wave matches Figure 3's structure");
}
