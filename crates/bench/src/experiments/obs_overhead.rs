//! E17: cost of the observability layer on the hot path.
//!
//! The contract in DESIGN.md's Observability section: the `*_recorded`
//! push variants, monomorphized against [`waves_obs::NoopRecorder`],
//! must cost the same as the plain seed methods — every recorder hook
//! inlines to nothing. This experiment measures three configurations of
//! the same workload:
//!
//! 1. `push_bit` (the uninstrumented seed path);
//! 2. `push_bit_recorded(&NoopRecorder)` (instrumentation compiled out);
//! 3. `push_bit_recorded(&MetricsRegistry)` (live counters + latency
//!    histogram — the `--stats` price);
//! 4. the span-guard pattern over a `NoopRecorder` (the tracing hook
//!    with tracing disabled — `trace_enabled()` folds to `false`, so
//!    the guard must compile down to the plain push);
//! 5. the same guard over a live [`SpanRecorder`] with an active
//!    [`TraceCtx`] (every push records a span into the ring).
//!
//! Configurations are interleaved round-robin across repetitions and
//! each reports its best (minimum) per-item time, which strips
//! scheduler/frequency noise; the acceptance lines check the noop
//! recorder AND the noop span guard against the 2% budget.

use crate::table::{f, Table};
use std::time::Instant;
use waves_core::DetWave;
use waves_obs::trace::{next_span_id, now_ns, ROOT_SPAN_ID};
use waves_obs::{
    MetricsRegistry, NoopRecorder, Recorder, Span, SpanRecorder, Stage, TraceCtx, TraceId,
};

const REPS: usize = 7;
const ITEMS: usize = 1 << 20;

/// Best-of-`REPS` mean per-item time for one configuration.
fn best_ns_per_item<F: FnMut(&mut DetWave, bool)>(
    n: u64,
    eps: f64,
    bits: &[bool],
    mut op: F,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let mut wave = DetWave::new(n, eps).unwrap();
        // Past the fill phase so expiry work is part of the measurement.
        for _ in 0..(2 * n) {
            wave.push_bit(true);
        }
        let t0 = Instant::now();
        for &b in bits {
            op(&mut wave, b);
        }
        let ns = t0.elapsed().as_nanos() as f64 / bits.len() as f64;
        std::hint::black_box(wave.query_max());
        best = best.min(ns);
    }
    best
}

/// The span-guard pattern from the engine hot path, verbatim: gate on
/// `ctx.active() && rec.trace_enabled()`, read the clock only inside the
/// guard, record the [`Span`] after the work. Over a `NoopRecorder` the
/// whole thing must fold away.
#[inline]
fn push_span_guarded<R: Recorder>(wave: &mut DetWave, bit: bool, rec: &R, ctx: TraceCtx) {
    let guard = (ctx.active() && rec.trace_enabled()).then(|| (next_span_id(), now_ns()));
    wave.push_bit_recorded(bit, rec);
    if let Some((id, t0)) = guard {
        rec.span(Span {
            trace: ctx.trace,
            id,
            parent: ctx.parent,
            stage: Stage::Shard,
            start_ns: t0,
            dur_ns: now_ns() - t0,
        });
    }
}

pub fn run() {
    println!("E17 — observability overhead on DetWave::push_bit");
    println!("=================================================\n");

    let (n, eps) = (1u64 << 16, 0.05);
    // Mixed stream: 1-bits exercise the store/evict path, 0-bits the
    // position-only path (a 3-term LCG keeps it deterministic).
    let mut x = 0x9e3779b97f4a7c15u64;
    let bits: Vec<bool> = (0..ITEMS)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 62) & 1 == 1
        })
        .collect();

    let registry = MetricsRegistry::new();
    let ring = SpanRecorder::new();
    let traced_ctx = TraceCtx {
        trace: TraceId(0xE17),
        parent: ROOT_SPAN_ID,
    };
    let plain = best_ns_per_item(n, eps, &bits, |w, b| w.push_bit(b));
    let noop = best_ns_per_item(n, eps, &bits, |w, b| w.push_bit_recorded(b, &NoopRecorder));
    let live = best_ns_per_item(n, eps, &bits, |w, b| w.push_bit_recorded(b, &registry));
    let noop_span = best_ns_per_item(n, eps, &bits, |w, b| {
        push_span_guarded(w, b, &NoopRecorder, TraceCtx::NONE)
    });
    let live_span = best_ns_per_item(n, eps, &bits, |w, b| {
        push_span_guarded(w, b, &ring, traced_ctx)
    });
    std::hint::black_box(registry.snapshot());
    std::hint::black_box(ring.total_recorded());

    let pct = |a: f64, base: f64| 100.0 * (a - base) / base;
    let mut t = Table::new(&["configuration", "best ns/item", "vs plain"]);
    t.row(&["push_bit (seed)".into(), f(plain), "—".into()]);
    t.row(&[
        "push_bit_recorded + NoopRecorder".into(),
        f(noop),
        format!("{:+.2}%", pct(noop, plain)),
    ]);
    t.row(&[
        "push_bit_recorded + MetricsRegistry".into(),
        f(live),
        format!("{:+.2}%", pct(live, plain)),
    ]);
    t.row(&[
        "span guard + NoopRecorder (untraced)".into(),
        f(noop_span),
        format!("{:+.2}%", pct(noop_span, plain)),
    ]);
    t.row(&[
        "span guard + SpanRecorder (traced)".into(),
        f(live_span),
        format!("{:+.2}%", pct(live_span, plain)),
    ]);
    t.print();

    let overhead = pct(noop, plain);
    println!(
        "\nnoop-recorder overhead: {overhead:+.2}% (budget: <= 2%) — {}",
        crate::verdict::word(overhead <= 2.0)
    );
    let span_overhead = pct(noop_span, plain);
    println!(
        "noop-span-guard overhead: {span_overhead:+.2}% (budget: <= 2%) — {}",
        crate::verdict::word(span_overhead <= 2.0)
    );
    println!("Expected shape: the noop columns match plain to measurement noise;");
    println!("the live registry pays a few ns for two relaxed atomics per item,");
    println!("and the traced span guard adds two clock reads plus a ring push.");
}

#[cfg(test)]
mod tests {
    use super::*;
    use waves_obs::Recorder;

    /// Semantic half of the zero-cost contract (the timing half is the
    /// experiment): the three configurations leave the wave in an
    /// identical state.
    #[test]
    fn all_configurations_agree() {
        let registry = MetricsRegistry::new();
        let mut a = DetWave::new(256, 0.1).unwrap();
        let mut b = DetWave::new(256, 0.1).unwrap();
        let mut c = DetWave::new(256, 0.1).unwrap();
        let mut x = 7u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bit = (x >> 62) & 1 == 1;
            a.push_bit(bit);
            b.push_bit_recorded(bit, &NoopRecorder);
            c.push_bit_recorded(bit, &registry);
        }
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a.encode(), c.encode());
        assert!(!NoopRecorder.enabled());
        assert!(registry.enabled());
    }

    /// Same contract for the tracing hook: span-guarded pushes leave the
    /// wave bit-identical to plain pushes, the noop guard records
    /// nothing, and the live guard records one span per push.
    #[test]
    fn span_guard_preserves_state_and_records() {
        let ring = SpanRecorder::new();
        let ctx = TraceCtx {
            trace: TraceId(42),
            parent: ROOT_SPAN_ID,
        };
        let mut a = DetWave::new(256, 0.1).unwrap();
        let mut b = DetWave::new(256, 0.1).unwrap();
        let mut c = DetWave::new(256, 0.1).unwrap();
        let mut x = 7u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bit = (x >> 62) & 1 == 1;
            a.push_bit(bit);
            push_span_guarded(&mut b, bit, &NoopRecorder, TraceCtx::NONE);
            push_span_guarded(&mut c, bit, &ring, ctx);
        }
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a.encode(), c.encode());
        assert_eq!(ring.total_recorded(), 500);
        assert!(ring
            .trace(TraceId(42))
            .iter()
            .all(|s| s.stage == Stage::Shard && s.parent == ROOT_SPAN_ID));
    }
}
