//! A1/A2/A4/A5: ablations of the design choices called out in DESIGN.md.

use crate::table::{f, pct, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use waves_core::{BasicWave, DetWave, ExactCount};
use waves_distributed::{coord_union_estimate, CoordSampleParty};
use waves_gf2::LevelHash;
use waves_rand::{combine_instance, median, RandConfig, UnionParty};
use waves_streamgen::{Bernoulli, BitSource};

/// A1: store-at-max-level (optimal wave) vs store-at-all-levels (basic
/// wave): same guarantee, different space and per-item work.
pub fn levels() {
    println!("A1 — store-at-max-level vs store-at-all-levels");
    println!("==============================================\n");
    let mut t = Table::new(&[
        "eps",
        "N",
        "basic entries",
        "optimal entries",
        "basic bits",
        "optimal bits",
        "max err basic",
        "max err optimal",
    ]);
    for &(eps, n) in &[(0.25f64, 1u64 << 10), (0.1, 1 << 12), (0.05, 1 << 14)] {
        let mut basic = BasicWave::new(n, eps).unwrap();
        let mut opt = DetWave::new(n, eps).unwrap();
        let mut oracle = ExactCount::new(n);
        let mut src = Bernoulli::new(0.5, 13);
        let (mut eb, mut eo) = (0.0f64, 0.0f64);
        for step in 1..=(4 * n) {
            let b = src.next_bit();
            basic.push_bit(b);
            opt.push_bit(b);
            oracle.push_bit(b);
            if step % 29 == 0 {
                let actual = oracle.query(n);
                eb = eb.max(basic.query(n).unwrap().relative_error(actual));
                eo = eo.max(opt.query(n).unwrap().relative_error(actual));
            }
        }
        use waves_core::Synopsis;
        let br = Synopsis::space_report(&basic);
        let or = opt.space_report();
        assert!(eb <= eps + 1e-9 && eo <= eps + 1e-9);
        t.row(&[
            format!("{eps}"),
            format!("{n}"),
            format!("{}", br.entries),
            format!("{}", or.entries),
            f(br.synopsis_bits as f64),
            f(or.synopsis_bits as f64),
            pct(eb),
            pct(eo),
        ]);
    }
    t.print();
    println!("\nExpected shape: same guarantee; the optimal layout stores each");
    println!("entry once (fewer entries/bits) and touches one level per item.");
}

/// A2: the queue constant c — the analysis needs c = 36; how small can
/// it go empirically before the per-instance success rate drops?
pub fn queue_constant() {
    println!("A2 — randomized-wave queue constant c (paper: 36)");
    println!("=================================================\n");
    let (len, n, eps, t_parties) = (16_000usize, 4_096u64, 0.2, 3usize);
    let streams = waves_streamgen::correlated_streams(t_parties, len, 0.4, 0.25, 21);
    let union = waves_streamgen::positionwise_union(&streams);
    let actual = union[len - n as usize..].iter().filter(|&&b| b).count() as f64;
    let mut t = Table::new(&[
        "c",
        "queue cap",
        "trials within eps",
        "rate",
        "median rel err",
    ]);
    for &c in &[36.0f64, 16.0, 8.0, 4.0, 2.0, 1.0] {
        let trials = 30u64;
        let mut ok = 0;
        let mut errs = Vec::new();
        let mut cap = 0usize;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(3_000 + seed);
            let cfg = RandConfig::for_positions(n, eps, 0.3, &mut rng)
                .unwrap()
                .with_c(c)
                .with_instances(1, &mut rng);
            cap = cfg.queue_capacity();
            let mut parties: Vec<UnionParty> =
                (0..t_parties).map(|_| UnionParty::new(&cfg)).collect();
            for i in 0..len {
                for (j, p) in parties.iter_mut().enumerate() {
                    p.push_bit(streams[j][i]);
                }
            }
            let s = len as u64 + 1 - n;
            let reports: Vec<_> = parties
                .iter()
                .map(|p| {
                    let mut m = p.message(n).unwrap();
                    m.reports.remove(0)
                })
                .collect();
            let refs: Vec<&_> = reports.iter().collect();
            let est = combine_instance(&cfg, 0, &refs, s);
            let rel = (est - actual).abs() / actual;
            errs.push(rel);
            if rel <= eps {
                ok += 1;
            }
        }
        t.row(&[
            format!("{c}"),
            format!("{cap}"),
            format!("{ok}/{trials}"),
            pct(ok as f64 / trials as f64),
            pct(median(errs)),
        ]);
    }
    t.print();
    println!("\nExpected shape: c = 36 is conservative — success stays above 2/3");
    println!("well below it, then collapses once queues are too small to cover");
    println!("the window at any level.");
}

/// A4: the midpoint estimator vs returning the interval endpoints.
pub fn estimator() {
    println!("A4 — midpoint vs endpoint estimators (deterministic wave)");
    println!("=========================================================\n");
    let (eps, n) = (0.1f64, 1u64 << 12);
    let mut wave = DetWave::new(n, eps).unwrap();
    let mut oracle = ExactCount::new(n);
    let mut src = Bernoulli::new(0.45, 3);
    let (mut e_mid, mut e_lo, mut e_hi) = (0.0f64, 0.0f64, 0.0f64);
    let (mut s_mid, mut s_lo, mut s_hi) = (0.0f64, 0.0f64, 0.0f64);
    let mut q = 0u64;
    for step in 1..=(6 * n) {
        let b = src.next_bit();
        wave.push_bit(b);
        oracle.push_bit(b);
        if step % 7 == 0 {
            let actual = oracle.query(n);
            if actual == 0 {
                continue;
            }
            let est = wave.query_max();
            let rm = (est.value - actual as f64).abs() / actual as f64;
            let rl = (est.lo as f64 - actual as f64).abs() / actual as f64;
            let rh = (est.hi as f64 - actual as f64).abs() / actual as f64;
            e_mid = e_mid.max(rm);
            e_lo = e_lo.max(rl);
            e_hi = e_hi.max(rh);
            s_mid += rm;
            s_lo += rl;
            s_hi += rh;
            q += 1;
        }
    }
    let mut t = Table::new(&["estimator", "max rel err", "mean rel err"]);
    t.row(&["midpoint (paper)".into(), pct(e_mid), pct(s_mid / q as f64)]);
    t.row(&["lower endpoint".into(), pct(e_lo), pct(s_lo / q as f64)]);
    t.row(&["upper endpoint".into(), pct(e_hi), pct(s_hi / q as f64)]);
    t.print();
    assert!(e_mid <= eps + 1e-9);
    println!("\nExpected shape: the midpoint halves the worst-case error of either");
    println!("endpoint — that factor of 2 is exactly what makes the eps bound tight.");
}

/// A5: coordinated sampling \[18\] vs the randomized wave on *window*
/// queries at equal memory.
pub fn coordinated() {
    println!("A5 — coordinated sampling (SPAA'01) vs randomized wave on windows");
    println!("=================================================================\n");
    let (len, n, eps, t_parties) = (120_000usize, 1_024u64, 0.2f64, 2usize);
    // Dense history, so coordinated sampling is forced to a high level.
    let streams = waves_streamgen::correlated_streams(t_parties, len, 0.6, 0.2, 31);
    let union = waves_streamgen::positionwise_union(&streams);
    let actual = union[len - n as usize..].iter().filter(|&&b| b).count() as f64;

    let trials = 15u64;
    let mut t = Table::new(&["method", "median rel err", "within eps", "state/party"]);
    for method in ["coordinated-sampling", "randomized-wave"] {
        let mut errs = Vec::new();
        let mut ok = 0;
        let mut state = 0usize;
        for seed in 0..trials {
            let est = if method == "coordinated-sampling" {
                let mut rng = StdRng::seed_from_u64(9_000 + seed);
                // Domain must cover the whole stream (no windows in CS).
                let degree = 64 - (2 * len as u64 - 1).leading_zeros();
                let h = LevelHash::random(degree, &mut rng);
                let cap = (36.0 / (eps * eps)).ceil() as usize;
                let mut parties: Vec<CoordSampleParty> = (0..t_parties)
                    .map(|_| CoordSampleParty::new(h.clone(), cap))
                    .collect();
                for i in 0..len {
                    for (j, p) in parties.iter_mut().enumerate() {
                        p.push_bit(streams[j][i]);
                    }
                }
                state = parties[0].sample().len();
                let s = len as u64 + 1 - n;
                let refs: Vec<&_> = parties.iter().collect();
                coord_union_estimate(&refs, s)
            } else {
                let mut rng = StdRng::seed_from_u64(9_000 + seed);
                let cfg = RandConfig::for_positions(n, eps, 0.3, &mut rng)
                    .unwrap()
                    .with_instances(1, &mut rng);
                let mut parties: Vec<UnionParty> =
                    (0..t_parties).map(|_| UnionParty::new(&cfg)).collect();
                for i in 0..len {
                    for (j, p) in parties.iter_mut().enumerate() {
                        p.push_bit(streams[j][i]);
                    }
                }
                state = parties[0].stored();
                let s = len as u64 + 1 - n;
                let reports: Vec<_> = parties
                    .iter()
                    .map(|p| {
                        let mut m = p.message(n).unwrap();
                        m.reports.remove(0)
                    })
                    .collect();
                let refs: Vec<&_> = reports.iter().collect();
                combine_instance(&cfg, 0, &refs, s)
            };
            let rel = (est - actual).abs() / actual;
            errs.push(rel);
            if rel <= eps {
                ok += 1;
            }
        }
        t.row(&[
            method.into(),
            pct(median(errs)),
            format!("{ok}/{trials}"),
            format!("{state}"),
        ]);
    }
    t.print();
    println!("\nExpected shape: on a long dense history, coordinated sampling's");
    println!("single global level leaves almost no samples inside the window, so");
    println!("its window estimates are wildly noisy; the wave's per-level recency");
    println!("queues keep the window covered at an appropriate level.");
}
