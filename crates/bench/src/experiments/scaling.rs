//! E14: query cost scaling — message sizes and referee work as functions
//! of t, eps, and delta (Theorem 5's `O(t log(1/delta)(loglog N +
//! 1/eps^2))` query bound).

use crate::table::{f, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use waves_rand::{instances_for, RandConfig, Referee, UnionParty};
use waves_streamgen::correlated_streams;

pub fn run() {
    println!("E14 — query cost scaling (Theorem 5)");
    println!("====================================\n");
    let (len, n) = (4_000usize, 1_024u64);

    println!("(a) bytes per query vs t (eps = 0.2, delta = 0.1):");
    let mut t = Table::new(&["t", "bytes/query", "bytes/(t)", "referee ns/query"]);
    for &tp in &[2usize, 4, 8, 16] {
        let streams = correlated_streams(tp, len, 0.3, 0.3, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = RandConfig::for_positions(n, 0.2, 0.1, &mut rng).unwrap();
        let mut parties: Vec<UnionParty> = (0..tp).map(|_| UnionParty::new(&cfg)).collect();
        for i in 0..len {
            for (j, p) in parties.iter_mut().enumerate() {
                p.push_bit(streams[j][i]);
            }
        }
        let msgs: Vec<_> = parties.iter().map(|p| p.message(n).unwrap()).collect();
        let bytes: usize = msgs.iter().map(|m| m.wire_bytes(&cfg)).sum();
        let referee = Referee::new(cfg);
        let s = len as u64 + 1 - n;
        let t0 = Instant::now();
        let reps = 50;
        for _ in 0..reps {
            std::hint::black_box(referee.estimate(&msgs, s));
        }
        let ns = t0.elapsed().as_nanos() as f64 / reps as f64;
        t.row(&[
            format!("{tp}"),
            format!("{bytes}"),
            f(bytes as f64 / tp as f64),
            f(ns),
        ]);
    }
    t.print();

    println!("\n(b) bytes per party-message vs eps (t = 2, delta = 0.1,");
    println!("    window 2^16 so even the largest queue is content-bound):");
    let mut t = Table::new(&["eps", "queue cap (c/eps^2)", "bytes/message"]);
    let (blen, bn) = (150_000usize, 1u64 << 16);
    for &eps in &[0.4f64, 0.2, 0.1, 0.05] {
        let tp = 2usize;
        let streams = correlated_streams(tp, blen, 0.5, 0.2, 5);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = RandConfig::for_positions(bn, eps, 0.1, &mut rng).unwrap();
        let mut parties: Vec<UnionParty> = (0..tp).map(|_| UnionParty::new(&cfg)).collect();
        for i in 0..blen {
            for (j, p) in parties.iter_mut().enumerate() {
                p.push_bit(streams[j][i]);
            }
        }
        let bytes = parties[0].message(bn).unwrap().wire_bytes(&cfg);
        t.row(&[
            format!("{eps}"),
            format!("{}", cfg.queue_capacity()),
            format!("{bytes}"),
        ]);
    }
    t.print();

    println!("\n(c) instances and stored-coin bits vs delta (eps = 0.2):");
    let mut t = Table::new(&[
        "delta",
        "instances (18 ln(1/d))",
        "coin bits",
        "synopsis bits/party",
    ]);
    for &delta in &[0.3f64, 0.1, 0.01, 0.001] {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = RandConfig::for_positions(n, 0.2, delta, &mut rng).unwrap();
        let mut p = UnionParty::new(&cfg);
        let mut src = correlated_streams(1, len, 0.5, 0.0, 7).remove(0);
        for b in src.drain(..) {
            p.push_bit(b);
        }
        t.row(&[
            format!("{delta}"),
            format!("{}", instances_for(delta)),
            format!("{}", cfg.stored_coin_bits()),
            f(p.synopsis_bits(&cfg) as f64),
        ]);
    }
    t.print();
    println!("\nExpected shape: (a) bytes linear in t, referee time ~linear in t;");
    println!("(b) message size ~1/eps^2; (c) instances/space ~log(1/delta).");
}
