//! E4: per-item processing cost, wave vs exponential histogram.
//!
//! Theorem 1's headline: O(1) *worst-case* per item for the wave vs O(1)
//! amortized / O(log(eps N)) worst-case for the EH (cascading merges).
//! Two measurements:
//!
//! 1. structural (jitter-free): the EH's maximum merge-cascade length
//!    as N grows — it grows like log N — vs the wave's constant one
//!    level touched per item;
//! 2. wall-clock per-item latency tails on an all-ones stream (the EH's
//!    adversarial input).

use crate::table::{f, Table};
use crate::timing::per_item_latency;
use waves_core::DetWave;
use waves_eh::EhCount;

pub fn run() {
    println!("E4 — Theorem 1: per-item worst case, wave vs EH");
    println!("===============================================\n");

    // Structural: cascade growth with N (all-ones stream).
    println!("EH merge-cascade length vs N (all-ones stream, eps = 0.05):");
    let mut t = Table::new(&[
        "N",
        "EH max cascade",
        "EH merges/item",
        "wave levels touched/item",
    ]);
    for log_n in [8u32, 12, 16, 20] {
        let n = 1u64 << log_n;
        let steps = (2 * n).min(1 << 21);
        let mut eh = EhCount::new(n, 0.05).unwrap();
        for _ in 0..steps {
            eh.push_bit(true);
        }
        t.row(&[
            format!("2^{log_n}"),
            format!("{}", eh.max_cascade()),
            f(eh.merges() as f64 / steps as f64),
            "1 (by construction)".into(),
        ]);
    }
    t.print();

    // Wall-clock tails.
    println!("\nper-item wall-clock latency (ns), all-ones stream, eps = 0.05, N = 2^16:");
    let n = 1u64 << 16;
    let items: Vec<bool> = vec![true; 1 << 19];

    let mut wave = DetWave::new(n, 0.05).unwrap();
    // Warm up both structures past the fill phase so steady state is
    // measured.
    for _ in 0..(1 << 17) {
        wave.push_bit(true);
    }
    let wave_stats = per_item_latency(&items, |&b| wave.push_bit(b));

    let mut eh = EhCount::new(n, 0.05).unwrap();
    for _ in 0..(1 << 17) {
        eh.push_bit(true);
    }
    let eh_stats = per_item_latency(&items, |&b| eh.push_bit(b));

    let mut t = Table::new(&["synopsis", "mean", "p50", "p99", "p99.9", "max"]);
    for (name, s) in [("det-wave", wave_stats), ("eh", eh_stats)] {
        t.row(&[
            name.into(),
            f(s.mean_ns),
            f(s.p50_ns),
            f(s.p99_ns),
            f(s.p999_ns),
            f(s.max_ns),
        ]);
    }
    t.print();

    // Query latency: O(1) for the max window.
    println!("\nquery-time (window = N), ns per call over 10^5 calls:");
    let t0 = std::time::Instant::now();
    let mut acc = 0.0;
    for _ in 0..100_000 {
        acc += std::hint::black_box(wave.query_max()).value;
    }
    let wave_q = t0.elapsed().as_nanos() as f64 / 1e5;
    let t0 = std::time::Instant::now();
    for _ in 0..100_000 {
        acc += std::hint::black_box(eh.query(n).unwrap()).value;
    }
    let eh_q = t0.elapsed().as_nanos() as f64 / 1e5;
    std::hint::black_box(acc);
    println!("  det-wave query_max: {wave_q:.1} ns");
    println!("  eh query (scans buckets): {eh_q:.1} ns");

    println!("\nExpected shape: EH cascade length grows ~log N while the wave");
    println!("touches exactly one level; EH latency max/p99.9 exceed the wave's.");
}
