//! E5: space vs the Theorem 1 bound and the Datar et al. lower bound
//! (Theorem 2).
//!
//! Measured synopsis bits (paper encoding: mod-N' counters, delta-coded
//! positions/ranks) swept over eps and N, printed next to
//! `(1/eps) log^2(eps N)` and the lower bound `(k/16) log^2(N/k)`.
//! The claim is about *shape*: measured bits track the upper-bound curve
//! within a constant factor and stay above the lower-bound curve's
//! shape.

use crate::table::{f, Table};
use waves_core::space::{datar_lower_bound_bits, det_wave_bound_bits};
use waves_core::DetWave;
use waves_eh::EhCount;
use waves_streamgen::{Bernoulli, BitSource};

pub fn run() {
    println!("E5 — space: measured bits vs Theorem 1 bound and Theorem 2 lower bound");
    println!("=======================================================================\n");
    let mut t = Table::new(&[
        "eps",
        "N",
        "wave bits",
        "EH bits",
        "bound (1/e)log^2(eN)",
        "lower bnd (k/16)log^2(N/k)",
        "wave/bound",
    ]);
    for &eps in &[0.5f64, 0.25, 0.1, 0.05, 0.02] {
        for &log_n in &[10u32, 14, 18] {
            let n = 1u64 << log_n;
            let mut wave = DetWave::new(n, eps).unwrap();
            let mut eh = EhCount::new(n, eps).unwrap();
            let mut src = Bernoulli::new(0.5, 7);
            for _ in 0..(3 * n).min(1 << 21) {
                let b = src.next_bit();
                wave.push_bit(b);
                eh.push_bit(b);
            }
            let wave_bits = wave.space_report().synopsis_bits as f64;
            let eh_bits = eh.space_report().synopsis_bits as f64;
            let bound = det_wave_bound_bits(eps, n);
            let k = (1.0 / eps).ceil() as u64;
            let lower = datar_lower_bound_bits(k, n);
            t.row(&[
                format!("{eps}"),
                format!("2^{log_n}"),
                f(wave_bits),
                f(eh_bits),
                f(bound),
                f(lower),
                f(wave_bits / bound),
            ]);
        }
    }
    t.print();
    println!("\nExpected shape: wave bits grow linearly in 1/eps and");
    println!("quadratically in log(eps N); the wave/bound ratio stays within a");
    println!("small constant band across the sweep (Theorem 1's optimality).");
}
