//! E20: persistence cost and recovery time (`waves-store`).
//!
//! Durability is only worth shipping if its hot-path tax is bounded and
//! its recovery story is fast. Two measurements:
//!
//! 1. **Ingest throughput, WAL off vs on**: the same pre-generated
//!    keyed workload replayed through an in-memory engine and through
//!    persistent engines at each sync policy (`every-batch`,
//!    `every-64`, `on-checkpoint`). Acceptance line: the default
//!    `every-64` policy must stay within 2x of the WAL-off baseline —
//!    group commit amortizes the fsync, so the tax is mostly the
//!    buffered record write.
//! 2. **Recovery time vs WAL length**: populate a store with
//!    checkpoints disabled so recovery replays the whole log, then time
//!    engine construction. Replay cost must grow with the log, and a
//!    checkpoint must collapse it (recovery after checkpoint reads the
//!    snapshot, not the history).
//!
//! Numbers here are workload-relative, not absolute: the fsync cost of
//! the host filesystem dominates `every-batch` and varies wildly across
//! machines (tmpfs vs NVMe vs spinning disk).

use crate::table::{f, Table};
use std::time::Instant;
use waves_engine::{Engine, EngineConfig, IngestRequest, KeyedBits, PersistConfig, SyncPolicy};
use waves_streamgen::KeyedWorkload;

const REPS: usize = 3;
const EVENTS: u64 = 50_000;
const BITS_PER_EVENT: usize = 32;
const BATCH: usize = 256;
const KEYS: u64 = 10_000;
const WINDOW: u64 = 256;
const EPS: f64 = 0.2;
const SHARDS: usize = 4;

fn make_batches() -> Vec<Vec<KeyedBits>> {
    let mut workload = KeyedWorkload::new(KEYS, BITS_PER_EVENT, 0.5, 20);
    let mut batches = Vec::new();
    let mut remaining = EVENTS;
    while remaining > 0 {
        let n = remaining.min(BATCH as u64) as usize;
        batches.push(workload.next_packed_batch(n));
        remaining -= n as u64;
    }
    batches
}

fn scratch(tag: &str) -> std::path::PathBuf {
    waves_store::scratch_dir(&format!("bench-e20-{tag}"))
}

fn cfg(persist: Option<PersistConfig>) -> EngineConfig {
    let mut b = EngineConfig::builder()
        .num_shards(SHARDS)
        .max_window(WINDOW)
        .eps(EPS);
    if let Some(pc) = persist {
        b = b.persist_config(pc);
    }
    b.build()
}

/// One blocking replay including engine construction teardown off the
/// clock; returns throughput in Mbit/s.
fn one_run(persist: Option<PersistConfig>, batches: &[Vec<KeyedBits>]) -> f64 {
    let engine = Engine::new(cfg(persist)).unwrap();
    let t0 = Instant::now();
    for b in batches {
        engine
            .ingest(IngestRequest::batch(b.clone()).blocking(true))
            .unwrap();
    }
    engine.flush();
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(engine.dropped_items(), 0, "blocking path must not shed");
    (EVENTS as usize * BITS_PER_EVENT) as f64 / secs / 1e6
}

/// Best-of-`REPS` throughput for one sync policy (fresh dir per rep so
/// recovery work never leaks into the ingest clock).
fn best_tput_persist(tag: &str, sync: SyncPolicy, batches: &[Vec<KeyedBits>]) -> f64 {
    let mut best = 0.0f64;
    for rep in 0..REPS {
        let dir = scratch(&format!("{tag}-{rep}"));
        let pc = PersistConfig::new(&dir)
            .sync_policy(sync)
            .checkpoint_every(0);
        best = best.max(one_run(Some(pc), batches));
        let _ = std::fs::remove_dir_all(&dir);
    }
    best
}

/// Time a recovering engine construction over a WAL of `take` batches.
/// Population syncs every batch so the whole log survives the simulated
/// crash (`mem::forget` skips even the OS-buffer flush, so a lazier
/// policy would leave recovery nothing to replay — the honest crash
/// semantics of those policies, but not what this measurement is for).
fn recovery_secs(tag: &str, batches: &[Vec<KeyedBits>], take: usize) -> f64 {
    let dir = scratch(tag);
    let pc = || {
        PersistConfig::new(&dir)
            .sync_policy(SyncPolicy::EveryBatch)
            .checkpoint_every(0)
    };
    {
        let engine = Engine::new(cfg(Some(pc()))).unwrap();
        for b in &batches[..take] {
            engine
                .ingest(IngestRequest::batch(b.clone()).blocking(true))
                .unwrap();
        }
        engine.flush();
        // Leak the engine: Drop would write a shutdown checkpoint and
        // recovery would read that instead of replaying the WAL.
        std::mem::forget(engine);
    }
    let t0 = Instant::now();
    let engine = Engine::new(cfg(Some(pc()))).unwrap();
    let secs = t0.elapsed().as_secs_f64();
    assert!(engine.snapshot().keys() > 0, "recovery must restore keys");
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
    secs
}

pub fn run() {
    println!("E20 — persistence cost and recovery time");
    println!("========================================\n");
    println!("{EVENTS} events x {BITS_PER_EVENT} bits over {KEYS} keys, batch {BATCH},");
    println!("DetWave(N={WINDOW}, eps={EPS}), {SHARDS} shards, best of {REPS} reps.\n");

    let batches = make_batches();
    let base = (0..REPS).fold(0.0f64, |b, _| b.max(one_run(None, &batches)));
    let policies = [
        ("every-batch", SyncPolicy::EveryBatch),
        ("every-64", SyncPolicy::EveryN(64)),
        ("on-checkpoint", SyncPolicy::OnCheckpoint),
    ];
    let mut t = Table::new(&["sync policy", "Mbit/s", "vs WAL-off"]);
    t.row(&["(off)".into(), f(base), "1.00x".into()]);
    let mut every_n_ratio = 0.0;
    for (name, sync) in policies {
        let tput = best_tput_persist(name, sync, &batches);
        let ratio = base / tput;
        if matches!(sync, SyncPolicy::EveryN(_)) {
            every_n_ratio = ratio;
        }
        t.row(&[name.into(), f(tput), format!("{ratio:.2}x")]);
    }
    t.print();
    println!(
        "\nWAL tax at the default every-64 policy: {every_n_ratio:.2}x (budget: <= 2x) — {}",
        crate::verdict::word(every_n_ratio <= 2.0)
    );

    // Recovery scaling: replaying a 4x longer WAL must cost more, and a
    // checkpoint must beat full replay.
    let quarter = batches.len() / 4;
    let short = recovery_secs("rec-short", &batches, quarter);
    let long = recovery_secs("rec-long", &batches, batches.len());
    let dir = scratch("rec-ckpt");
    let pc = PersistConfig::new(&dir)
        .sync_policy(SyncPolicy::EveryBatch)
        .checkpoint_every(0);
    {
        let engine = Engine::new(cfg(Some(pc.clone()))).unwrap();
        for b in &batches {
            engine
                .ingest(IngestRequest::batch(b.clone()).blocking(true))
                .unwrap();
        }
        engine.checkpoint().unwrap();
        std::mem::forget(engine);
    }
    let t0 = Instant::now();
    let engine = Engine::new(cfg(Some(pc))).unwrap();
    let ckpt = t0.elapsed().as_secs_f64();
    assert!(engine.snapshot().keys() > 0);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);

    let mut t = Table::new(&["recovery from", "seconds"]);
    t.row(&[format!("WAL, {quarter} batches"), format!("{short:.4}")]);
    t.row(&[
        format!("WAL, {} batches", batches.len()),
        format!("{long:.4}"),
    ]);
    t.row(&["checkpoint (full history)".into(), format!("{ckpt:.4}")]);
    t.print();
    println!(
        "\ncheckpoint recovery beats full WAL replay: {} — {}",
        if ckpt < long { "yes" } else { "no" },
        crate::verdict::word(ckpt < long)
    );
    println!("\nExpected shape: every-batch pays one fsync per batch and lands");
    println!("well below the baseline; every-64 group-commits and stays within");
    println!("budget; recovery time tracks WAL length until a checkpoint");
    println!("collapses the history into one snapshot read.");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miniature end-to-end: persist a few batches, recover, and check
    /// the WAL-on engine matches the WAL-off one on sampled queries.
    #[test]
    fn tiny_persist_run_matches_memory_engine() {
        let mut workload = KeyedWorkload::new(50, 8, 0.5, 20);
        let batches: Vec<_> = (0..8).map(|_| workload.next_packed_batch(16)).collect();
        let dir = scratch("tiny");
        let pc = PersistConfig::new(&dir).sync_policy(SyncPolicy::EveryBatch);
        let mem = Engine::new(cfg(None)).unwrap();
        {
            let persisted = Engine::new(cfg(Some(pc.clone()))).unwrap();
            for b in &batches {
                mem.ingest(IngestRequest::batch(b.clone()).blocking(true))
                    .unwrap();
                persisted
                    .ingest(IngestRequest::batch(b.clone()).blocking(true))
                    .unwrap();
            }
            persisted.flush();
        }
        mem.flush();
        let recovered = Engine::new(cfg(Some(pc))).unwrap();
        for key in 0..50u64 {
            assert_eq!(
                recovered.query(key, WINDOW).ok(),
                mem.query(key, WINDOW).ok(),
                "key={key}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
