//! E25: push-vs-pull communication for continuous monitoring.
//!
//! Continuous monitoring wants an always-valid windowed answer at the
//! referee — the answer is read at every arrival, not at a leisurely
//! polling cadence. The pull design must therefore re-ship every
//! party's synopsis at every read to stay valid; the push design (Chan
//! et al.'s threshold scheme) ships a delta only when a party's local
//! drift crosses its share of the ε-slack pool, and the referee's
//! folded answer stays valid in between with staleness bounded by the
//! pool. Same total error budget ε both ways: pull spends all of it on
//! the synopses, push splits it `eps_split` / `1 - eps_split` between
//! synopses and slack.
//!
//! Both modes replay identical streams and count exact bytes-on-wire
//! (`WireCodec::encode` of the real `PUSH_DELTA` / `PUSH_SYNOPSIS`
//! frames, header and CRC included). The accounting is deterministic —
//! no timing on the clock — so the verdict is core-count-independent
//! and never SKIPs.
//!
//! Acceptance lines, on a bursty keyed workload and an adversarial
//! drift-oscillating one:
//! * push ships ≥ 4× fewer bytes than per-query pull;
//! * every push answer honors `eps_syn·truth + slack` and every pull
//!   answer honors `eps·truth` (correctness rows, never skipped).

use crate::table::{f, Table};
use waves_core::{DetWave, ExactCount};
use waves_distributed::{combine_estimates, MonitorConfig, MonitorReferee, PushParty};
use waves_net::{Frame, SynopsisKind, WireCodec};
use waves_streamgen::KeyedWorkload;

const WINDOW: u64 = 512;
const EPS: f64 = 0.1;
const SPLIT: f64 = 0.5;
const PARTIES: u64 = 4;
const EVENTS: usize = 3_000;
/// The continuous answer is consumed at every arrival.
const QUERY_EVERY: usize = 1;

fn lcg_step(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 33
}

/// Bursty keyed traffic: one workload key per party, hot set + bursts,
/// so some parties drift fast while others idle.
fn bursty_events() -> Vec<(u64, Vec<bool>)> {
    let mut w = KeyedWorkload::new(PARTIES, 4, 0.5, 25)
        .with_burst_range(1, 24)
        .with_hot_set(0.7, 1);
    w.next_batch(EVENTS)
}

/// Adversarial drift oscillation: density alternates between 0.95 and
/// 0.05 in 64-item blocks per party, forcing the local count to swing
/// across the slack threshold as often as the stream allows.
fn oscillating_events() -> Vec<(u64, Vec<bool>)> {
    let mut rng = 77u64;
    let mut out = Vec::with_capacity(EVENTS);
    for i in 0..EVENTS {
        let party = (i as u64) % PARTIES;
        let dense = (i / 64) % 2 == 0;
        let len = 1 + (lcg_step(&mut rng) % 4) as usize;
        let bits = (0..len)
            .map(|_| lcg_step(&mut rng) % 100 < if dense { 95 } else { 5 })
            .collect();
        out.push((party, bits));
    }
    out
}

struct ModeStats {
    frames: u64,
    bytes: u64,
    /// Worst |answer - truth| seen at a query tick.
    max_err: f64,
    /// Every answer stayed inside its mode's error contract.
    sound: bool,
}

/// Replay one stream through both designs at once: the parties and the
/// exact oracles see identical bits; only the shipping rule differs.
fn replay(events: &[(u64, Vec<bool>)]) -> (ModeStats, ModeStats) {
    let mcfg = MonitorConfig {
        max_window: WINDOW,
        eps: EPS,
        eps_split: SPLIT,
        parties: PARTIES,
    };
    let mut parties: Vec<PushParty> = (0..PARTIES)
        .map(|p| PushParty::new(&mcfg, p).expect("validated config"))
        .collect();
    // The pull design spends the whole budget on the synopses.
    let mut pull_waves: Vec<DetWave> = (0..PARTIES)
        .map(|_| DetWave::new(WINDOW, EPS).expect("validated config"))
        .collect();
    let mut exact: Vec<ExactCount> = (0..PARTIES).map(|_| ExactCount::new(WINDOW)).collect();
    let mut referee = MonitorReferee::new();
    let slack = mcfg.slack_total();
    let eps_syn = mcfg.eps_synopsis();
    let mut push = ModeStats {
        frames: 0,
        bytes: 0,
        max_err: 0.0,
        sound: true,
    };
    let mut pull = ModeStats {
        frames: 0,
        bytes: 0,
        max_err: 0.0,
        sound: true,
    };
    for (party, bits) in events.iter() {
        let idx = *party as usize;
        for &b in bits {
            exact[idx].push_bit(b);
        }
        pull_waves[idx].push_bits(bits);
        if let Some(delta) = parties[idx].push_bits(bits) {
            let frame = Frame::PushDelta {
                party: delta.party,
                seq: delta.seq,
                slack: delta.slack,
                kind: SynopsisKind::DetWave,
                bytes: delta.bytes.clone(),
            };
            push.bytes += WireCodec::encode(&frame).len() as u64;
            push.frames += 1;
            referee.install(&delta).expect("party-encoded delta");
        }
        // The continuous answer is consumed here, at every arrival
        // (QUERY_EVERY = 1): pull must re-ship to stay valid, push's
        // folded answer is already current.
        {
            let truth: u64 = exact.iter().map(|e| e.query(WINDOW)).sum();
            // Push: the folded answer is already current — zero wire
            // cost at query time.
            let got = referee.combined();
            let err = (got.value - truth as f64).abs();
            push.max_err = push.max_err.max(err);
            push.sound &= err <= eps_syn * truth as f64 + slack + 1e-6;
            // Pull: every party re-ships its full synopsis, every
            // query.
            for (p, wave) in pull_waves.iter().enumerate() {
                let frame = Frame::PushSynopsis {
                    party: p as u64,
                    kind: SynopsisKind::DetWave,
                    bytes: wave.encode(),
                };
                pull.bytes += WireCodec::encode(&frame).len() as u64;
                pull.frames += 1;
            }
            let got = combine_estimates(pull_waves.iter().map(|w| w.query_max()));
            let err = (got.value - truth as f64).abs();
            pull.max_err = pull.max_err.max(err);
            pull.sound &= err <= EPS * truth as f64 + 1e-6;
        }
    }
    (push, pull)
}

pub fn run() {
    println!("E25 — push-vs-pull communication (continuous monitoring)");
    println!("========================================================\n");
    println!("{PARTIES} parties, DetWave(N={WINDOW}), eps={EPS} split {SPLIT}");
    println!(
        "(synopsis eps {:.3}, slack pool {:.1}),",
        EPS * SPLIT,
        (EPS - EPS * SPLIT) * WINDOW as f64
    );
    println!("{EVENTS} events, the answer read every {QUERY_EVERY} arrival(s); bytes are real");
    println!("PUSH_DELTA / PUSH_SYNOPSIS frame lengths, header + CRC included.\n");

    let workloads = [
        ("bursty", bursty_events()),
        ("oscillating", oscillating_events()),
    ];
    let mut t = Table::new(&[
        "workload",
        "push frames",
        "push bytes",
        "pull frames",
        "pull bytes",
        "pull/push",
        "push max err",
        "pull max err",
    ]);
    let mut all_ratios_pass = true;
    let mut all_sound = true;
    for (name, events) in &workloads {
        let (push, pull) = replay(events);
        let ratio = pull.bytes as f64 / push.bytes as f64;
        all_ratios_pass &= ratio >= 4.0;
        all_sound &= push.sound && pull.sound;
        t.row(&[
            (*name).to_string(),
            format!("{}", push.frames),
            format!("{}", push.bytes),
            format!("{}", pull.frames),
            format!("{}", pull.bytes),
            format!("{ratio:.1}x"),
            f(push.max_err),
            f(pull.max_err),
        ]);
    }
    t.print();

    println!(
        "\npush ships >= 4x fewer bytes than per-query pull on both workloads — {}",
        crate::verdict::word(all_ratios_pass)
    );
    println!(
        "every answer inside its contract (push: eps_syn*truth + slack; pull: eps*truth) — {}",
        crate::verdict::word(all_sound)
    );
    println!("\nExpected shape: pull cost grows with query rate (parties x");
    println!("queries full synopses), push cost only with drift-threshold");
    println!("crossings; between crossings the referee's answer stays valid");
    println!("with staleness bounded by the slack pool.");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The measurement core on a miniature stream: push stays sound
    /// and strictly cheaper than per-query pull.
    #[test]
    fn miniature_replay_is_sound_and_cheaper() {
        let events = bursty_events();
        let (push, pull) = replay(&events[..500]);
        assert!(push.sound, "push answer left its contract");
        assert!(pull.sound, "pull answer left its contract");
        assert!(push.frames > 0, "drift never crossed the threshold");
        assert!(
            pull.bytes > push.bytes,
            "pull ({}) not costlier than push ({})",
            pull.bytes,
            push.bytes
        );
    }
}
