//! E13: the deterministic distributed scenarios (Section 3.4,
//! Scenarios 1 and 2): accuracy and communication.

use crate::table::{f, pct, Table};
use waves_distributed::{Scenario1Count, Scenario1Sum, Scenario2Count};
use waves_streamgen::{correlated_streams, split_logical_stream};

pub fn run() {
    println!("E13 — Scenarios 1–2: deterministic waves over distributed streams");
    println!("=================================================================\n");

    // Scenario 1, counts.
    println!("(a) Scenario 1 (per-stream windows, Referee sums), counts:");
    let mut t = Table::new(&[
        "t",
        "eps",
        "actual",
        "estimate",
        "rel err",
        "msgs/query",
        "bytes/query",
        "worst-party B",
    ]);
    let (len, n) = (20_000usize, 2_048u64);
    for &tp in &[2usize, 4, 8] {
        for &eps in &[0.1f64, 0.05] {
            let streams = correlated_streams(tp, len, 0.3, 0.4, 5 + tp as u64);
            let mut sc = Scenario1Count::new(tp, n, eps).unwrap();
            for i in 0..len {
                for j in 0..tp {
                    sc.push_bit(j, streams[j][i]);
                }
            }
            let actual: u64 = streams
                .iter()
                .map(|s| s[len - n as usize..].iter().filter(|&&b| b).count() as u64)
                .sum();
            let before = sc.comm().bytes;
            let est = sc.query(n).unwrap();
            let spent = sc.comm().bytes - before;
            // The paper's bound is per party: the worst party must stay
            // at scalar-message size, not just the average.
            let (_, worst) = sc.comm().worst_party().expect("t >= 1");
            let rel = est.relative_error(actual);
            assert!(rel <= eps + 1e-9);
            t.row(&[
                format!("{tp}"),
                format!("{eps}"),
                f(actual as f64),
                f(est.value),
                pct(rel),
                format!("{tp}"),
                format!("{spent}"),
                format!("{}", worst.bytes),
            ]);
        }
    }
    t.print();

    // Scenario 1, sums.
    println!("\n(b) Scenario 1, sums of bounded integers (R = 1000):");
    let (tp, n, r, eps) = (4usize, 1_024u64, 1_000u64, 0.1);
    let mut sc = Scenario1Sum::new(tp, n, r, eps).unwrap();
    let mut truth = vec![Vec::new(); tp];
    let mut x = 17u64;
    for _ in 0..10_000 {
        for j in 0..tp {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % (r + 1);
            sc.push_value(j, v).unwrap();
            truth[j].push(v);
        }
    }
    let actual: u64 = truth
        .iter()
        .map(|vs| vs[vs.len() - n as usize..].iter().sum::<u64>())
        .sum();
    let est = sc.query(n).unwrap();
    println!(
        "  t = {tp}, actual {actual}, estimate {}, rel err {}",
        f(est.value),
        pct(est.relative_error(actual))
    );
    assert!(est.relative_error(actual) <= eps + 1e-9);

    // Scenario 2.
    println!("\n(c) Scenario 2 (split logical stream):");
    let mut t = Table::new(&["t", "actual", "estimate", "rel err"]);
    let len = 30_000usize;
    let n = 2_048u64;
    let eps = 0.1;
    let stream: Vec<bool> = (0..len).map(|i| (i * 2654435761) % 13 < 5).collect();
    let actual = stream[len - n as usize..].iter().filter(|&&b| b).count() as u64;
    for tp in [1usize, 3, 9] {
        let parts = split_logical_stream(&stream, tp, 77);
        let mut sc = Scenario2Count::new(tp, n, eps).unwrap();
        for (j, part) in parts.iter().enumerate() {
            for &(seq, b) in part {
                sc.push_item(j, seq, b).unwrap();
            }
        }
        let est = sc.query(len as u64, n).unwrap();
        let rel = est.relative_error(actual);
        assert!(rel <= eps + 1e-9);
        t.row(&[format!("{tp}"), f(actual as f64), f(est.value), pct(rel)]);
    }
    t.print();
    println!("\nPASS: both scenarios within eps with t constant-size messages per query.");
}
