//! E8: Theorem 5 / Lemma 3 — randomized union counting over sliding
//! windows of distributed streams: per-instance success rate, the
//! (eps, delta) guarantee of the median, independence from t, and the
//! space per party.

use crate::table::{f, pct, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use waves_rand::{
    combine_instance, estimate_union, instances_for, RandConfig, Referee, UnionParty,
};
use waves_streamgen::{correlated_streams, positionwise_union};

fn exact_window_union(streams: &[Vec<bool>], n: u64) -> u64 {
    let u = positionwise_union(streams);
    u[u.len() - n as usize..].iter().filter(|&&b| b).count() as u64
}

pub fn run() {
    println!("E8 — Theorem 5: (eps, delta) union counting over distributed streams");
    println!("====================================================================\n");

    // Per-instance success probability (Lemma 3: > 2/3). The window
    // holds far more 1's than one queue (c/eps^2), so the estimate
    // really is sampled, not exact.
    println!("(a) per-instance success rate, Pr[rel err <= eps] (Lemma 3 bound: > 2/3):");
    let mut t = Table::new(&["eps", "t", "trials", "within eps", "rate"]);
    let (len, n) = (80_000usize, 1u64 << 15);
    for &eps in &[0.3f64, 0.2, 0.1] {
        for &tp in &[2usize, 8] {
            let streams = correlated_streams(tp, len, 0.35, 0.25, 11);
            let actual = exact_window_union(&streams, n) as f64;
            let trials = 30u64;
            let mut ok = 0;
            for seed in 0..trials {
                let mut rng = StdRng::seed_from_u64(500 + seed);
                let cfg = RandConfig::for_positions(n, eps, 0.3, &mut rng)
                    .unwrap()
                    .with_instances(1, &mut rng);
                let mut parties: Vec<UnionParty> = (0..tp).map(|_| UnionParty::new(&cfg)).collect();
                for i in 0..len {
                    for (j, p) in parties.iter_mut().enumerate() {
                        p.push_bit(streams[j][i]);
                    }
                }
                let s = len as u64 + 1 - n;
                let reports: Vec<_> = parties
                    .iter()
                    .map(|p| {
                        let mut m = p.message(n).unwrap();
                        m.reports.remove(0)
                    })
                    .collect();
                let refs: Vec<&_> = reports.iter().collect();
                let est = combine_instance(&cfg, 0, &refs, s);
                if (est - actual).abs() / actual <= eps {
                    ok += 1;
                }
            }
            t.row(&[
                format!("{eps}"),
                format!("{tp}"),
                format!("{trials}"),
                format!("{ok}"),
                pct(ok as f64 / trials as f64),
            ]);
        }
    }
    t.print();

    // Median-of-instances: error distribution across seeds.
    let (len, n) = (40_000usize, 1u64 << 14);
    println!("\n(b) median estimator across 12 seeded runs (t = 4):");
    let mut t = Table::new(&[
        "eps",
        "delta",
        "instances",
        "mean err",
        "max err",
        "failures",
        "space bits/party",
    ]);
    for &(eps, delta) in &[(0.2f64, 0.1f64), (0.2, 0.01), (0.1, 0.05)] {
        let tp = 4usize;
        let mut errs = Vec::new();
        let mut space = 0u64;
        for seed in 0..12u64 {
            let streams = correlated_streams(tp, len, 0.3, 0.3, 700 + seed);
            let actual = exact_window_union(&streams, n) as f64;
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = RandConfig::for_positions(n, eps, delta, &mut rng).unwrap();
            let mut parties: Vec<UnionParty> = (0..tp).map(|_| UnionParty::new(&cfg)).collect();
            for i in 0..len {
                for (j, p) in parties.iter_mut().enumerate() {
                    p.push_bit(streams[j][i]);
                }
            }
            space = parties[0].synopsis_bits(&cfg);
            let referee = Referee::new(cfg);
            let est = estimate_union(&referee, &parties, n).unwrap();
            errs.push((est - actual).abs() / actual);
        }
        let failures = errs.iter().filter(|&&e| e > eps).count();
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let max = errs.iter().cloned().fold(0.0, f64::max);
        t.row(&[
            format!("{eps}"),
            format!("{delta}"),
            format!("{}", instances_for(delta)),
            pct(mean),
            pct(max),
            format!("{failures}/12"),
            f(space as f64),
        ]);
    }
    t.print();

    // Independence from t.
    println!("\n(c) guarantee vs number of parties (eps = 0.2, delta = 0.05):");
    let mut t = Table::new(&["t", "actual", "estimate", "rel err"]);
    for &tp in &[2usize, 4, 8, 16] {
        let streams = correlated_streams(tp, len, 0.25, 0.2, 40 + tp as u64);
        let actual = exact_window_union(&streams, n) as f64;
        let mut rng = StdRng::seed_from_u64(tp as u64);
        let cfg = RandConfig::for_positions(n, 0.2, 0.05, &mut rng).unwrap();
        let mut parties: Vec<UnionParty> = (0..tp).map(|_| UnionParty::new(&cfg)).collect();
        for i in 0..len {
            for (j, p) in parties.iter_mut().enumerate() {
                p.push_bit(streams[j][i]);
            }
        }
        let referee = Referee::new(cfg);
        let est = estimate_union(&referee, &parties, n).unwrap();
        let rel = (est - actual).abs() / actual;
        assert!(rel <= 0.2, "t={tp}");
        t.row(&[format!("{tp}"), f(actual), f(est), pct(rel)]);
    }
    t.print();

    // Sub-window queries from one synopsis.
    println!("\n(d) one synopsis, many window sizes (t = 4, eps = 0.2, delta = 0.05):");
    let mut t = Table::new(&["n", "actual", "estimate", "rel err"]);
    {
        let tp = 4usize;
        let streams = correlated_streams(tp, len, 0.3, 0.25, 91);
        let mut rng = StdRng::seed_from_u64(17);
        let cfg = RandConfig::for_positions(n, 0.2, 0.05, &mut rng).unwrap();
        let mut parties: Vec<UnionParty> = (0..tp).map(|_| UnionParty::new(&cfg)).collect();
        for i in 0..len {
            for (j, p) in parties.iter_mut().enumerate() {
                p.push_bit(streams[j][i]);
            }
        }
        let referee = Referee::new(cfg);
        for nq in [n / 16, n / 4, n / 2, n] {
            let actual = exact_window_union(&streams, nq) as f64;
            let est = estimate_union(&referee, &parties, nq).unwrap();
            let rel = (est - actual).abs() / actual.max(1.0);
            assert!(rel <= 0.2, "n={nq}");
            t.row(&[format!("{nq}"), f(actual), f(est), pct(rel)]);
        }
    }
    t.print();
    println!("\nExpected shape: (a) rates well above 2/3; (b) failures consistent");
    println!("with delta; (c) error flat in t; (d) every window size n <= N");
    println!("answered within eps from the same per-party state.");
}
