//! Minimal fixed-width table printer for experiment output.

/// A simple column-aligned table that prints like the paper's tables.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format helpers.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

pub fn pct(v: f64) -> String {
    format!("{:.3}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        t.print(); // smoke: no panic
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_panics() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn formatting() {
        assert_eq!(f(0.12345), "0.1235");
        assert_eq!(f(12.345), "12.35");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(pct(0.05), "5.000%");
    }
}
