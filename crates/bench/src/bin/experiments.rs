//! Experiment driver: regenerates every figure/theorem artifact.
//!
//! ```text
//! cargo run --release -p waves-bench --bin experiments -- list
//! cargo run --release -p waves-bench --bin experiments -- fig2
//! cargo run --release -p waves-bench --bin experiments -- all
//! ```

use waves_bench::{experiments, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "list" || args[0] == "--help" {
        println!("usage: experiments <id> [<id> ...] | all | list\n");
        println!("available experiments:");
        for (id, desc) in EXPERIMENTS {
            println!("  {id:<18} {desc}");
        }
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().map(|&(id, _)| id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(72));
        }
        let t0 = std::time::Instant::now();
        if !experiments::run(id) {
            eprintln!("unknown experiment id: {id} (try `experiments list`)");
            std::process::exit(2);
        }
        println!("\n[{} finished in {:.2?}]", id, t0.elapsed());
    }
    // Machine-checkable verdicts: any FAIL line anywhere above turns
    // the whole run into a nonzero exit (SKIPs stay zero), so CI gates
    // on the exit code instead of scraping stdout.
    if waves_bench::verdict::any_failed() {
        eprintln!("\none or more experiments reported FAIL");
        std::process::exit(1);
    }
}
