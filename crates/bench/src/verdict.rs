//! Machine-checkable experiment verdicts.
//!
//! Experiments print `PASS` / `FAIL` / `SKIP (...)` lines for humans;
//! this module additionally records every FAIL in a process-wide flag
//! so the `experiments` binary can exit nonzero — and CI can gate on
//! the exit code instead of scraping stdout. SKIP never affects the
//! exit code: it reports an environment that cannot support the claim
//! (e.g. too few cores for a speedup comparison), not a refutation.

use std::sync::atomic::{AtomicBool, Ordering};

static FAILED: AtomicBool = AtomicBool::new(false);

/// The verdict word for a boolean check; a FAIL is recorded for
/// [`any_failed`].
pub fn word(pass: bool) -> &'static str {
    if pass {
        "PASS"
    } else {
        FAILED.store(true, Ordering::Relaxed);
        "FAIL"
    }
}

/// A SKIP verdict with a reason. Never affects the exit code.
pub fn skip(reason: impl std::fmt::Display) -> String {
    format!("SKIP ({reason})")
}

/// True if any verdict since the last [`reset`] was FAIL.
pub fn any_failed() -> bool {
    FAILED.load(Ordering::Relaxed)
}

/// Clear the failure flag.
pub fn reset() {
    FAILED.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test owns the whole lifecycle: the flag is process-global, so
    // splitting these assertions across parallel tests would race.
    #[test]
    fn fail_sets_the_flag_and_skip_does_not() {
        reset();
        assert!(!any_failed());
        assert_eq!(word(true), "PASS");
        assert!(!any_failed());
        let s = skip("only 1 core");
        assert_eq!(s, "SKIP (only 1 core)");
        assert!(!any_failed());
        assert_eq!(word(false), "FAIL");
        assert!(any_failed());
        reset();
        assert!(!any_failed());
    }
}
