//! Request tracing: spans, trace ids, and a ring-buffer span recorder.
//!
//! A *trace* follows one request end to end: client call → wire frame
//! (the id rides in the wire v3 header) → server dispatch → engine shard
//! queue wait vs. execute → WAL append/fsync. Each timed section is a
//! [`Span`]; spans carrying the same [`TraceId`] form a tree via their
//! `parent` links, so one networked query yields queue time, shard time,
//! wal time, and wire time as separate children of one root.
//!
//! The contract mirrors metrics: hot paths are generic over
//! `R: Recorder`, [`Recorder::trace_enabled`](crate::Recorder::trace_enabled)
//! defaults to `false`, and
//! every span site is gated on it — so code monomorphized over
//! `NoopRecorder` never reads the clock and never constructs a span
//! (measured by the trace arm of the `obs-overhead` experiment).
//!
//! Timings use a process-wide monotonic epoch ([`now_ns`]): every span
//! recorded in one process shares a clock, so offsets within a trace are
//! directly comparable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Identifies one end-to-end request. Carried as 8 bytes in the wire v3
/// header; `0` means "untraced" and is never allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The untraced sentinel (wire value 0).
    pub const NONE: TraceId = TraceId(0);

    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Allocate a fresh process-unique trace id (never 0). Sequential
    /// draws from a global counter are mixed through SplitMix64 so ids
    /// from concurrent clients don't collide in low bits.
    pub fn next() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(1);
        loop {
            let raw = COUNTER.fetch_add(1, Ordering::Relaxed);
            let mixed = splitmix64(raw);
            if mixed != 0 {
                return TraceId(mixed);
            }
        }
    }
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Span id of the client-side root span of every trace. The wire header
/// carries only the trace id, so the cross-process parent link is by
/// convention: the requesting side records its root span with id
/// [`ROOT_SPAN_ID`], and the serving side parents its dispatch span to
/// [`ROOT_SPAN_ID`] without ever seeing the client's span records.
pub const ROOT_SPAN_ID: u64 = 1;

/// Allocate a fresh process-unique span id (> [`ROOT_SPAN_ID`]).
#[inline]
pub fn next_span_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(ROOT_SPAN_ID + 1);
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

/// Which instrumented section of the request path a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Client-side whole request (the root span of a trace).
    Request,
    /// Client-side socket write + response read.
    Wire,
    /// Server-side frame dispatch (decode done, handler running).
    Dispatch,
    /// Engine shard-queue wait: enqueue → worker dequeue.
    Queue,
    /// Engine shard-worker execution (apply batch / answer query).
    Shard,
    /// Store WAL append (framing + write + policy sync).
    Wal,
    /// Store `fsync`/`sync_data` within a WAL append.
    Fsync,
}

impl Stage {
    /// Stable lowercase name used in logs and rendered span trees.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::Wire => "wire",
            Stage::Dispatch => "dispatch",
            Stage::Queue => "queue",
            Stage::Shard => "shard",
            Stage::Wal => "wal",
            Stage::Fsync => "fsync",
        }
    }
}

/// One completed timed section. Plain copyable record; recorded via
/// [`Recorder::span`](crate::Recorder::span) after the section finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub trace: TraceId,
    /// Process-unique id of this span within the trace tree.
    pub id: u64,
    /// Parent span id; `0` for the root.
    pub parent: u64,
    pub stage: Stage,
    /// Start offset from the process epoch ([`now_ns`] clock).
    pub start_ns: u64,
    pub dur_ns: u64,
}

/// Propagates trace identity into lower layers (engine commands, store
/// appends). `NONE` everywhere on untraced paths; checking
/// [`TraceCtx::active`] is one integer compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    pub trace: TraceId,
    /// Span id the next recorded span should parent to.
    pub parent: u64,
}

impl TraceCtx {
    pub const NONE: TraceCtx = TraceCtx {
        trace: TraceId::NONE,
        parent: 0,
    };

    /// Whether this context belongs to a live trace. `#[inline]` (like
    /// the other gate helpers here) so the untraced fast path folds to
    /// nothing when monomorphized against a `NoopRecorder` — measured
    /// by the trace arm of the `obs-overhead` experiment.
    #[inline]
    pub fn active(self) -> bool {
        !self.trace.is_none()
    }

    /// A child context parented to the given span id, same trace.
    #[inline]
    pub fn child(self, parent: u64) -> TraceCtx {
        TraceCtx {
            trace: self.trace,
            parent,
        }
    }
}

/// Nanoseconds since a process-wide monotonic epoch (first call wins).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[derive(Debug)]
struct Ring {
    spans: Vec<Span>,
    /// Next write position once the ring is full.
    head: usize,
    total: u64,
}

/// A bounded, thread-safe store of completed spans: the test- and
/// dashboard-facing trace sink. Keeps the most recent `capacity` spans;
/// older spans are overwritten (retention, not backpressure — recording
/// never blocks on a full ring beyond the lock).
///
/// Implements [`Recorder`](crate::Recorder) with
/// [`trace_enabled`](crate::Recorder::trace_enabled) = `true` and all
/// metric methods as no-ops, so it composes with a `MetricsRegistry`
/// via [`Fanout`](crate::Fanout) for a full telemetry sink.
#[derive(Debug)]
pub struct SpanRecorder {
    ring: Mutex<Ring>,
    capacity: usize,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanRecorder {
    /// Default retention: the most recent 4096 spans.
    pub fn new() -> Self {
        Self::with_capacity(4096)
    }

    pub fn with_capacity(capacity: usize) -> Self {
        SpanRecorder {
            ring: Mutex::new(Ring {
                spans: Vec::new(),
                head: 0,
                total: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    pub fn push(&self, span: Span) {
        let mut ring = self.ring.lock().unwrap();
        ring.total += 1;
        if ring.spans.len() < self.capacity {
            ring.spans.push(span);
        } else {
            let head = ring.head;
            ring.spans[head] = span;
            ring.head = (head + 1) % self.capacity;
        }
    }

    /// All retained spans, oldest first.
    pub fn spans(&self) -> Vec<Span> {
        let ring = self.ring.lock().unwrap();
        let mut out = Vec::with_capacity(ring.spans.len());
        out.extend_from_slice(&ring.spans[ring.head..]);
        out.extend_from_slice(&ring.spans[..ring.head]);
        out
    }

    /// Retained spans belonging to one trace, oldest first.
    pub fn trace(&self, id: TraceId) -> Vec<Span> {
        self.spans().into_iter().filter(|s| s.trace == id).collect()
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.ring.lock().unwrap().total
    }

    pub fn clear(&self) {
        let mut ring = self.ring.lock().unwrap();
        ring.spans.clear();
        ring.head = 0;
    }

    /// Render one trace as an indented tree, children under parents in
    /// start order: `stage dur_ns=… start_ns=…` per line.
    pub fn render_trace(&self, id: TraceId) -> String {
        let mut spans = self.trace(id);
        spans.sort_by_key(|s| s.start_ns);
        let mut out = String::new();
        // Roots first (parent not among retained spans), then descend.
        let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
        fn descend(out: &mut String, spans: &[Span], parent: u64, depth: usize) {
            for s in spans.iter().filter(|s| s.parent == parent) {
                out.push_str(&"  ".repeat(depth));
                out.push_str(&format!(
                    "{} dur_ns={} start_ns={}\n",
                    s.stage.name(),
                    s.dur_ns,
                    s.start_ns
                ));
                descend(out, spans, s.id, depth + 1);
            }
        }
        for root in spans.iter().filter(|s| !ids.contains(&s.parent)) {
            out.push_str(&format!(
                "{} dur_ns={} start_ns={}\n",
                root.stage.name(),
                root.dur_ns,
                root.start_ns
            ));
            descend(&mut out, &spans, root.id, 1);
        }
        out
    }
}

impl crate::Recorder for SpanRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn trace_enabled(&self) -> bool {
        true
    }

    #[inline]
    fn span(&self, span: Span) {
        self.push(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn span(trace: u64, id: u64, parent: u64, stage: Stage, start: u64, dur: u64) -> Span {
        Span {
            trace: TraceId(trace),
            id,
            parent,
            stage,
            start_ns: start,
            dur_ns: dur,
        }
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = TraceId::next();
            assert!(!id.is_none());
            assert!(seen.insert(id), "duplicate trace id {id:?}");
        }
    }

    #[test]
    fn span_ids_start_above_root() {
        let a = next_span_id();
        let b = next_span_id();
        assert!(a > ROOT_SPAN_ID);
        assert_ne!(a, b);
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn ring_retains_most_recent() {
        let rec = SpanRecorder::with_capacity(3);
        for i in 0..5u64 {
            rec.push(span(7, 10 + i, 0, Stage::Shard, i, 1));
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(
            spans.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![12, 13, 14],
            "oldest-first, newest retained"
        );
        assert_eq!(rec.total_recorded(), 5);
    }

    #[test]
    fn trace_filter_and_clear() {
        let rec = SpanRecorder::new();
        rec.push(span(1, 2, 0, Stage::Request, 0, 10));
        rec.push(span(2, 3, 0, Stage::Request, 0, 10));
        rec.push(span(1, 4, 2, Stage::Wire, 1, 5));
        assert_eq!(rec.trace(TraceId(1)).len(), 2);
        assert_eq!(rec.trace(TraceId(2)).len(), 1);
        rec.clear();
        assert!(rec.spans().is_empty());
    }

    #[test]
    fn recorder_impl_records_spans_only() {
        let rec = SpanRecorder::new();
        assert!(rec.trace_enabled());
        assert!(rec.enabled());
        rec.incr(crate::MetricId::CliItems, 1); // no-op, must not panic
        rec.span(span(9, 2, 0, Stage::Queue, 0, 3));
        assert_eq!(rec.trace(TraceId(9)).len(), 1);
    }

    #[test]
    fn render_trace_indents_children() {
        let rec = SpanRecorder::new();
        rec.push(span(5, ROOT_SPAN_ID, 0, Stage::Request, 0, 100));
        rec.push(span(5, 2, ROOT_SPAN_ID, Stage::Wire, 1, 90));
        rec.push(span(5, 3, 2, Stage::Dispatch, 2, 80));
        let tree = rec.render_trace(TraceId(5));
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("request "));
        assert!(lines[1].starts_with("  wire "));
        assert!(lines[2].starts_with("    dispatch "));
    }

    #[test]
    fn trace_ctx_child_links() {
        let ctx = TraceCtx {
            trace: TraceId(8),
            parent: ROOT_SPAN_ID,
        };
        assert!(ctx.active());
        assert!(!TraceCtx::NONE.active());
        let child = ctx.child(42);
        assert_eq!(child.trace, TraceId(8));
        assert_eq!(child.parent, 42);
    }
}
