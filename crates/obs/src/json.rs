//! Minimal hand-rolled JSON emission (the workspace has no serde).
//!
//! Supports exactly what the metrics snapshots and CLI need: nested
//! objects, arrays, string/u64/f64/bool fields, with correct string
//! escaping and no trailing commas.

/// An append-only JSON writer. Field helpers insert commas as needed;
/// callers are responsible for balancing `begin_*`/`end_*`.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    needs_comma: bool,
}

impl JsonWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn finish(self) -> String {
        self.out
    }

    fn pre_value(&mut self) {
        if self.needs_comma {
            self.out.push(',');
        }
        self.needs_comma = true;
    }

    fn pre_field(&mut self, name: &str) {
        self.pre_value();
        self.push_string(name);
        self.out.push(':');
    }

    fn push_string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn push_f64(&mut self, v: f64) {
        if v.is_finite() {
            // Integral floats render without a spurious ".0"? No — keep
            // the fraction so consumers can rely on a stable shape.
            self.out.push_str(&format!("{v}"));
        } else {
            // JSON has no Infinity/NaN; null is the conventional stand-in.
            self.out.push_str("null");
        }
    }

    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.needs_comma = false;
    }

    pub fn end_object(&mut self) {
        self.out.push('}');
        self.needs_comma = true;
    }

    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.needs_comma = false;
    }

    pub fn end_array(&mut self) {
        self.out.push(']');
        self.needs_comma = true;
    }

    pub fn field_object(&mut self, name: &str) {
        self.pre_field(name);
        self.out.push('{');
        self.needs_comma = false;
    }

    pub fn field_array(&mut self, name: &str) {
        self.pre_field(name);
        self.out.push('[');
        self.needs_comma = false;
    }

    pub fn field_str(&mut self, name: &str, v: &str) {
        self.pre_field(name);
        self.push_string(v);
    }

    pub fn field_u64(&mut self, name: &str, v: u64) {
        self.pre_field(name);
        self.out.push_str(&v.to_string());
    }

    pub fn field_i64(&mut self, name: &str, v: i64) {
        self.pre_field(name);
        self.out.push_str(&v.to_string());
    }

    pub fn field_f64(&mut self, name: &str, v: f64) {
        self.pre_field(name);
        self.push_f64(v);
    }

    pub fn field_bool(&mut self, name: &str, v: bool) {
        self.pre_field(name);
        self.out.push_str(if v { "true" } else { "false" });
    }

    pub fn value_u64(&mut self, v: u64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    pub fn value_str(&mut self, v: &str) {
        self.pre_value();
        self.push_string(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_object_shape() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "waves");
        w.field_u64("count", 3);
        w.field_f64("p50", 1.5);
        w.field_bool("exact", true);
        w.field_object("inner");
        w.field_i64("neg", -2);
        w.end_object();
        w.field_array("xs");
        w.value_u64(1);
        w.value_u64(2);
        w.end_array();
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"waves","count":3,"p50":1.5,"exact":true,"inner":{"neg":-2},"xs":[1,2]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("s", "a\"b\\c\nd\te\u{1}");
        w.end_object();
        assert_eq!(w.finish(), r#"{"s":"a\"b\\c\nd\te\u0001"}"#);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_f64("inf", f64::INFINITY);
        w.field_f64("nan", f64::NAN);
        w.end_object();
        assert_eq!(w.finish(), r#"{"inf":null,"nan":null}"#);
    }

    #[test]
    fn top_level_array() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.value_str("a");
        w.value_str("b");
        w.end_array();
        assert_eq!(w.finish(), r#"["a","b"]"#);
    }
}
