//! Minimal hand-rolled JSON emission and parsing (the workspace has no
//! serde).
//!
//! [`JsonWriter`] supports exactly what the metrics snapshots and CLI
//! need: nested objects, arrays, string/u64/f64/bool fields, with
//! correct string escaping and no trailing commas. [`JsonValue`] is the
//! matching reader — a strict recursive-descent parser used to decode
//! remote STATS responses and to validate the writer's escaping in
//! tests.

/// An append-only JSON writer. Field helpers insert commas as needed;
/// callers are responsible for balancing `begin_*`/`end_*`.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    needs_comma: bool,
}

impl JsonWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn finish(self) -> String {
        self.out
    }

    fn pre_value(&mut self) {
        if self.needs_comma {
            self.out.push(',');
        }
        self.needs_comma = true;
    }

    fn pre_field(&mut self, name: &str) {
        self.pre_value();
        self.push_string(name);
        self.out.push(':');
    }

    fn push_string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn push_f64(&mut self, v: f64) {
        if v.is_finite() {
            // Integral floats render without a spurious ".0"? No — keep
            // the fraction so consumers can rely on a stable shape.
            self.out.push_str(&format!("{v}"));
        } else {
            // JSON has no Infinity/NaN; null is the conventional stand-in.
            self.out.push_str("null");
        }
    }

    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.needs_comma = false;
    }

    pub fn end_object(&mut self) {
        self.out.push('}');
        self.needs_comma = true;
    }

    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.needs_comma = false;
    }

    pub fn end_array(&mut self) {
        self.out.push(']');
        self.needs_comma = true;
    }

    pub fn field_object(&mut self, name: &str) {
        self.pre_field(name);
        self.out.push('{');
        self.needs_comma = false;
    }

    pub fn field_array(&mut self, name: &str) {
        self.pre_field(name);
        self.out.push('[');
        self.needs_comma = false;
    }

    pub fn field_str(&mut self, name: &str, v: &str) {
        self.pre_field(name);
        self.push_string(v);
    }

    pub fn field_u64(&mut self, name: &str, v: u64) {
        self.pre_field(name);
        self.out.push_str(&v.to_string());
    }

    pub fn field_i64(&mut self, name: &str, v: i64) {
        self.pre_field(name);
        self.out.push_str(&v.to_string());
    }

    pub fn field_f64(&mut self, name: &str, v: f64) {
        self.pre_field(name);
        self.push_f64(v);
    }

    pub fn field_bool(&mut self, name: &str, v: bool) {
        self.pre_field(name);
        self.out.push_str(if v { "true" } else { "false" });
    }

    pub fn value_u64(&mut self, v: u64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    pub fn value_str(&mut self, v: &str) {
        self.pre_value();
        self.push_string(v);
    }
}

/// A parsed JSON document. Integers keep full u64/i64 precision (JSON
/// numbers without a fraction or exponent never round-trip through
/// f64), which matters for 64-bit counters.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<JsonValue>),
    /// Fields in document order (duplicate keys are kept as-is; `get`
    /// returns the first).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document. Strict: exactly one value, no
    /// trailing input, no unescaped control characters in strings.
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Field lookup on an object; `None` on other variants.
    pub fn get(&self, name: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::U64(v) => Some(v),
            JsonValue::I64(v) => u64::try_from(v).ok(),
            JsonValue::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::U64(v) => Some(v as f64),
            JsonValue::I64(v) => Some(v as f64),
            JsonValue::F64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(xs) => Some(xs),
            _ => None,
        }
    }
}

const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        if self.depth >= MAX_PARSE_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte 0x{b:02x} at {}", self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The input is a &str, so slicing on these byte boundaries
            // is UTF-8 safe: '"' and '\\' are ASCII and never appear
            // inside a multi-byte sequence.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("unescaped control byte 0x{b:02x} in string"));
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn escape(&mut self) -> Result<char, String> {
        let b = self.peek().ok_or("unterminated escape")?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: must pair with \uDC00..\uDFFF.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err("unpaired surrogate".into());
                        }
                        let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(c).ok_or("bad surrogate pair")?
                    } else {
                        return Err("unpaired surrogate".into());
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err("unpaired surrogate".into());
                } else {
                    char::from_u32(hi).ok_or("bad \\u escape")?
                }
            }
            _ => return Err(format!("bad escape '\\{}'", b as char)),
        })
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = s.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
            if let Ok(v) = s.parse::<i64>() {
                return Ok(JsonValue::I64(v));
            }
        }
        s.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| format!("bad number '{s}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_object_shape() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "waves");
        w.field_u64("count", 3);
        w.field_f64("p50", 1.5);
        w.field_bool("exact", true);
        w.field_object("inner");
        w.field_i64("neg", -2);
        w.end_object();
        w.field_array("xs");
        w.value_u64(1);
        w.value_u64(2);
        w.end_array();
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"waves","count":3,"p50":1.5,"exact":true,"inner":{"neg":-2},"xs":[1,2]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("s", "a\"b\\c\nd\te\u{1}");
        w.end_object();
        assert_eq!(w.finish(), r#"{"s":"a\"b\\c\nd\te\u0001"}"#);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_f64("inf", f64::INFINITY);
        w.field_f64("nan", f64::NAN);
        w.end_object();
        assert_eq!(w.finish(), r#"{"inf":null,"nan":null}"#);
    }

    #[test]
    fn top_level_array() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.value_str("a");
        w.value_str("b");
        w.end_array();
        assert_eq!(w.finish(), r#"["a","b"]"#);
    }

    #[test]
    fn parser_reads_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "waves");
        w.field_u64("big", u64::MAX);
        w.field_i64("neg", -7);
        w.field_f64("p50", 1.5);
        w.field_bool("on", true);
        w.field_array("xs");
        w.value_u64(1);
        w.value_u64(2);
        w.end_array();
        w.end_object();
        let v = JsonValue::parse(&w.finish()).unwrap();
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("waves"));
        assert_eq!(v.get("big").and_then(JsonValue::as_u64), Some(u64::MAX));
        assert_eq!(v.get("neg"), Some(&JsonValue::I64(-7)));
        assert_eq!(v.get("p50").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(v.get("on").and_then(JsonValue::as_bool), Some(true));
        let xs = v.get("xs").and_then(JsonValue::as_array).unwrap();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[1].as_u64(), Some(2));
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = JsonValue::parse(r#""a\"b\\c\nd\te\u0001 ü \u00fc \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1} ü ü \u{1F600}"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "tru",
            "1 2",
            "\"unterminated",
            "\"bad \u{1} control\"",
            "\"\\ud800 unpaired\"",
            "\"\\q\"",
            "nullx",
            "--1",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_accepts_whitespace_and_nesting() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        let arr = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[0], JsonValue::U64(1));
        assert_eq!(arr[1].get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn parser_depth_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(JsonValue::parse(&deep).is_err());
    }
}
