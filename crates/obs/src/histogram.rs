//! Log-bucketed latency histogram.
//!
//! HDR-style bucketing: values below 16 get exact unit buckets; above
//! that, each power-of-two range is split into 16 sub-buckets, bounding
//! the relative quantization error at 1/16 ≈ 6.25% while keeping the
//! whole u64 range in [`NUM_BUCKETS`] fixed slots. Recording is a single
//! relaxed atomic increment plus min/max maintenance, so histograms can
//! be shared across party threads without locks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two range (and the exact-bucket cutoff).
const SUB: usize = 16;
const SUB_BITS: u32 = 4;

/// 16 exact buckets + 16 sub-buckets for each exponent 4..=63.
pub const NUM_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = ((v >> (e - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    SUB + (e - SUB_BITS) as usize * SUB + sub
}

/// Inclusive value range covered by bucket `idx`.
#[inline]
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB {
        return (idx as u64, idx as u64);
    }
    let e = SUB_BITS + ((idx - SUB) / SUB) as u32;
    let sub = ((idx - SUB) % SUB) as u64;
    let lo = (SUB as u64 + sub) << (e - SUB_BITS);
    let width = 1u64 << (e - SUB_BITS);
    (lo, lo + (width - 1))
}

/// A concurrent log-bucketed histogram of u64 samples (typically
/// nanoseconds).
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        LogHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a batch of identical samples (used when porting sorted
    /// sample arrays into the shared definition of quantiles).
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy; quantiles are computed on the snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut nonzero = Vec::new();
        for (idx, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                let (lo, hi) = bucket_bounds(idx);
                nonzero.push((lo, hi, c));
            }
        }
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: nonzero,
        }
    }
}

/// Plain-struct summary of a [`LogHistogram`], serializable by hand.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `(lo, hi, count)` for each nonzero bucket, in value order.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile at `p in [0, 1]` using the ceiling rank convention:
    /// the smallest recorded value `v` such that at least `ceil(p *
    /// count)` samples are `<= v`. Within a bucket the midpoint of the
    /// bucket's range is reported, clamped to the observed min/max so
    /// p0/p100 are exact.
    ///
    /// Total on any input: an empty histogram yields 0.0 (never NaN),
    /// and `p` outside `[0, 1]` — including NaN — is clamped into range
    /// rather than panicking, so dashboards fed remote snapshots can't
    /// be crashed by a bad query parameter.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        if self.count == 0 {
            return 0.0;
        }
        // Ceiling rank, at least 1: never truncates downward the way a
        // floored `(n-1) * p` index does on small samples.
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(lo, hi, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min, self.max) as f64;
            }
        }
        self.max as f64
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Render as a JSON object on the given writer.
    pub fn write_json(&self, w: &mut crate::json::JsonWriter) {
        w.begin_object();
        self.write_json_fields(w);
        w.end_object();
    }

    /// Render the fields only (no surrounding braces), for callers that
    /// open the object themselves (e.g. as a named field). Includes the
    /// raw nonzero buckets so a remote reader can recompute quantiles.
    pub fn write_json_fields(&self, w: &mut crate::json::JsonWriter) {
        w.field_u64("count", self.count);
        w.field_u64("sum", self.sum);
        w.field_u64("min", self.min);
        w.field_u64("max", self.max);
        w.field_f64("mean", self.mean());
        w.field_f64("p50", self.p50());
        w.field_f64("p90", self.p90());
        w.field_f64("p99", self.p99());
        w.field_f64("p999", self.p999());
        w.field_array("buckets");
        for &(lo, hi, c) in &self.buckets {
            w.begin_array();
            w.value_u64(lo);
            w.value_u64(hi);
            w.value_u64(c);
            w.end_array();
        }
        w.end_array();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_covers_u64() {
        for &v in &[
            0u64,
            1,
            15,
            16,
            17,
            255,
            256,
            1_000,
            65_535,
            1 << 32,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} idx={idx} range=[{lo},{hi}]");
            assert!(idx < NUM_BUCKETS);
        }
    }

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        let mut prev_hi = None;
        for idx in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "gap before bucket {idx}");
            }
            prev_hi = Some(hi);
        }
        assert_eq!(prev_hi, Some(u64::MAX));
    }

    #[test]
    fn relative_quantization_error_bounded() {
        for &v in &[100u64, 1_000, 50_000, 1 << 20, 1 << 40] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            let mid = lo + (hi - lo) / 2;
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 16.0 + 1e-9, "v={v} err={err}");
        }
    }

    #[test]
    fn empty_histogram_snapshot() {
        let h = LogHistogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero_not_nan() {
        let s = LogHistogram::new().snapshot();
        for p in [0.0, 0.5, 0.99, 1.0] {
            let q = s.quantile(p);
            assert_eq!(q, 0.0, "p={p} gave {q}");
            assert!(!q.is_nan());
        }
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = LogHistogram::new();
        h.record(42);
        let s = h.snapshot();
        for p in [0.0, 0.01, 0.5, 0.999, 1.0] {
            assert_eq!(s.quantile(p), 42.0, "p={p}");
        }
    }

    #[test]
    fn p_one_is_the_maximum() {
        let h = LogHistogram::new();
        for v in [3u64, 9, 1_000, 77] {
            h.record(v);
        }
        assert_eq!(h.snapshot().quantile(1.0), 1_000.0);
    }

    #[test]
    fn out_of_range_p_is_clamped() {
        let h = LogHistogram::new();
        h.record(5);
        h.record(10);
        let s = h.snapshot();
        assert_eq!(s.quantile(-0.5), s.quantile(0.0));
        assert_eq!(s.quantile(2.0), s.quantile(1.0));
        assert_eq!(s.quantile(f64::NAN), s.quantile(0.0));
        assert!(!s.quantile(f64::NAN).is_nan());
    }

    #[test]
    fn exact_buckets_give_exact_quantiles() {
        let h = LogHistogram::new();
        // Values 0..=9, one each: all under the exact-bucket cutoff.
        for v in 0..10u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.1), 0.0); // rank 1 -> value 0
        assert_eq!(s.quantile(0.5), 4.0); // rank 5 -> value 4
        assert_eq!(s.quantile(1.0), 9.0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 9);
        assert_eq!(s.mean(), 4.5);
    }

    #[test]
    fn p999_sees_the_tail_on_small_samples() {
        let h = LogHistogram::new();
        // 998 fast samples and two slow outliers: ceil-rank p999 of
        // 1000 samples is rank 999 — the first outlier.
        h.record_n(10, 998);
        h.record_n(1_000_000, 2);
        let s = h.snapshot();
        assert!(s.p999() > 900_000.0, "p999={}", s.p999());
        assert_eq!(s.p50(), 10.0);
    }

    #[test]
    fn quantiles_monotone_and_within_range() {
        let h = LogHistogram::new();
        let mut x = 1u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(x % 1_000_000);
        }
        let s = h.snapshot();
        let qs: Vec<f64> = [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0]
            .iter()
            .map(|&p| s.quantile(p))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
        assert!(qs[0] >= s.min as f64 && qs[6] <= s.max as f64);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LogHistogram::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 100);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert_eq!(
            h.snapshot().buckets.iter().map(|b| b.2).sum::<u64>(),
            40_000
        );
    }

    #[test]
    fn reset_clears() {
        let h = LogHistogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot().buckets.len(), 0);
    }
}
