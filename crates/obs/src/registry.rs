//! The registry: a fixed set of well-known counters and histograms that
//! itself implements [`Recorder`], so it can be handed directly to
//! instrumented code.
//!
//! Beyond the global counters, the registry keeps two flat dimensional
//! arrays — per-shard stats ([`ShardStat`] × [`MAX_TRACKED_SHARDS`]) and
//! per-key-family ingest counts ([`NUM_KEY_FAMILIES`] slots) — so a
//! snapshot shows load skew across engine shards without any hashing on
//! the hot path: the index *is* the shard number.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::histogram::{HistogramSnapshot, LogHistogram};
use crate::json::{JsonValue, JsonWriter};
use crate::recorder::{
    Event, HistId, MetricId, Recorder, ShardStat, MAX_TRACKED_SHARDS, NUM_HISTS, NUM_KEY_FAMILIES,
    NUM_METRICS, NUM_SHARD_STATS,
};

/// Lock-free store for every [`MetricId`] counter and [`HistId`]
/// histogram. Shareable across threads behind `&` or `Arc`.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: [AtomicU64; NUM_METRICS],
    hists: [LogHistogram; NUM_HISTS],
    /// Flat `[shard][stat]` array: index `shard * NUM_SHARD_STATS + stat`.
    shard_stats: [AtomicU64; MAX_TRACKED_SHARDS * NUM_SHARD_STATS],
    families: [AtomicU64; NUM_KEY_FAMILIES],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| LogHistogram::new()),
            shard_stats: std::array::from_fn(|_| AtomicU64::new(0)),
            families: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    pub fn counter(&self, id: MetricId) -> u64 {
        self.counters[id as usize].load(Ordering::Relaxed)
    }

    pub fn histogram(&self, id: HistId) -> &LogHistogram {
        &self.hists[id as usize]
    }

    /// One per-shard counter. Shards ≥ [`MAX_TRACKED_SHARDS`] fold into
    /// the last slot (mirroring [`Recorder::incr_shard`] clamping).
    pub fn shard_stat(&self, shard: usize, stat: ShardStat) -> u64 {
        let s = shard.min(MAX_TRACKED_SHARDS - 1);
        self.shard_stats[s * NUM_SHARD_STATS + stat as usize].load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for h in &self.hists {
            h.reset();
        }
        for c in &self.shard_stats {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.families {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Point-in-time copy of every metric, as a plain struct.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut shards: Vec<ShardStats> = (0..MAX_TRACKED_SHARDS)
            .map(|s| ShardStats {
                items: self.shard_stat(s, ShardStat::Items),
                batches: self.shard_stat(s, ShardStat::Batches),
                queries: self.shard_stat(s, ShardStat::Queries),
            })
            .collect();
        while shards.last().is_some_and(|s| s.is_zero()) {
            shards.pop();
        }
        MetricsSnapshot {
            counters: MetricId::ALL
                .iter()
                .map(|&id| (id.name(), self.counter(id)))
                .collect(),
            hists: HistId::ALL
                .iter()
                .map(|&id| (id.name(), self.hists[id as usize].snapshot()))
                .collect(),
            shards,
            families: self
                .families
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Recorder for MetricsRegistry {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn incr(&self, id: MetricId, by: u64) {
        self.counters[id as usize].fetch_add(by, Ordering::Relaxed);
    }

    #[inline]
    fn observe(&self, id: HistId, value: u64) {
        self.hists[id as usize].record(value);
    }

    #[inline]
    fn event(&self, _event: Event<'_>) {}

    #[inline]
    fn incr_shard(&self, shard: usize, stat: ShardStat, by: u64) {
        let s = shard.min(MAX_TRACKED_SHARDS - 1);
        self.shard_stats[s * NUM_SHARD_STATS + stat as usize].fetch_add(by, Ordering::Relaxed);
    }

    #[inline]
    fn incr_family(&self, family: usize, by: u64) {
        self.families[family & (NUM_KEY_FAMILIES - 1)].fetch_add(by, Ordering::Relaxed);
    }

    fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        Some(self.snapshot())
    }
}

/// Per-shard slice of a snapshot (one row of the shard dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    pub items: u64,
    pub batches: u64,
    pub queries: u64,
}

impl ShardStats {
    pub fn is_zero(&self) -> bool {
        self.items == 0 && self.batches == 0 && self.queries == 0
    }
}

/// Serializable point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, in [`MetricId::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, snapshot)` for every histogram, in [`HistId::ALL`] order.
    pub hists: Vec<(&'static str, HistogramSnapshot)>,
    /// Per-shard stats, trailing all-zero shards trimmed. Sums over this
    /// dimension equal the corresponding global engine counters.
    pub shards: Vec<ShardStats>,
    /// Per-key-family ingest counts ([`NUM_KEY_FAMILIES`] slots).
    pub families: Vec<u64>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    pub fn hist(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.hists.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Multi-line human-readable rendering. Zero counters and empty
    /// histograms are elided so small runs stay small.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== metrics ==\n");
        for &(name, v) in &self.counters {
            if v > 0 {
                out.push_str(&format!("{name:<28} {v}\n"));
            }
        }
        for (name, h) in &self.hists {
            if h.count > 0 {
                out.push_str(&format!(
                    "{:<28} count={} mean={:.1} p50={:.0} p90={:.0} p99={:.0} p999={:.0} max={}\n",
                    name,
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.p999(),
                    h.max,
                ));
            }
        }
        for (i, s) in self.shards.iter().enumerate() {
            if !s.is_zero() {
                out.push_str(&format!(
                    "shard[{i}]                     items={} batches={} queries={}\n",
                    s.items, s.batches, s.queries,
                ));
            }
        }
        out
    }

    /// Single JSON object: counters inline, histograms as sub-objects,
    /// shard/family dimensions as arrays.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_object("counters");
        for &(name, v) in &self.counters {
            w.field_u64(name, v);
        }
        w.end_object();
        w.field_object("histograms");
        for (name, h) in &self.hists {
            w.field_object(name);
            h.write_json_fields(w);
            w.end_object();
        }
        w.end_object();
        w.field_array("shards");
        for s in &self.shards {
            w.begin_object();
            w.field_u64("items", s.items);
            w.field_u64("batches", s.batches);
            w.field_u64("queries", s.queries);
            w.end_object();
        }
        w.end_array();
        w.field_array("families");
        for &f in &self.families {
            w.value_u64(f);
        }
        w.end_array();
        w.end_object();
    }

    /// Parse a snapshot previously rendered by [`Self::to_json`] (the
    /// wire format of the STATS response). Counter and histogram names
    /// are mapped back onto the known [`MetricId`]/[`HistId`] sets;
    /// names this build doesn't know (a newer peer) are dropped, and
    /// names the peer didn't send default to zero/empty. Quantiles are
    /// recomputed locally from the transported buckets.
    pub fn from_json(s: &str) -> Result<MetricsSnapshot, String> {
        let v = JsonValue::parse(s)?;
        let counters_obj = v.get("counters").ok_or("missing \"counters\"")?;
        let counters = MetricId::ALL
            .iter()
            .map(|&id| {
                let val = counters_obj
                    .get(id.name())
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0);
                (id.name(), val)
            })
            .collect();
        let hists_obj = v.get("histograms").ok_or("missing \"histograms\"")?;
        let mut hists = Vec::with_capacity(NUM_HISTS);
        for &id in HistId::ALL.iter() {
            let h = match hists_obj.get(id.name()) {
                Some(h) => parse_hist(h)?,
                None => HistogramSnapshot {
                    count: 0,
                    sum: 0,
                    min: 0,
                    max: 0,
                    buckets: Vec::new(),
                },
            };
            hists.push((id.name(), h));
        }
        let mut shards = Vec::new();
        if let Some(arr) = v.get("shards").and_then(JsonValue::as_array) {
            for s in arr {
                shards.push(ShardStats {
                    items: s.get("items").and_then(JsonValue::as_u64).unwrap_or(0),
                    batches: s.get("batches").and_then(JsonValue::as_u64).unwrap_or(0),
                    queries: s.get("queries").and_then(JsonValue::as_u64).unwrap_or(0),
                });
            }
        }
        let families = v
            .get("families")
            .and_then(JsonValue::as_array)
            .map(|arr| arr.iter().filter_map(JsonValue::as_u64).collect())
            .unwrap_or_default();
        Ok(MetricsSnapshot {
            counters,
            hists,
            shards,
            families,
        })
    }

    /// Prometheus text exposition (version 0.0.4): every counter as a
    /// `counter` family, the shard/family dimensions as labelled
    /// counters, and every histogram in the standard
    /// `_bucket{le=…}`/`_sum`/`_count` cumulative form.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for &(name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        if !self.shards.is_empty() {
            out.push_str("# TYPE engine_shard_items_total counter\n");
            for (i, s) in self.shards.iter().enumerate() {
                out.push_str(&format!(
                    "engine_shard_items_total{{shard=\"{i}\"}} {}\n",
                    s.items
                ));
            }
            out.push_str("# TYPE engine_shard_batches_total counter\n");
            for (i, s) in self.shards.iter().enumerate() {
                out.push_str(&format!(
                    "engine_shard_batches_total{{shard=\"{i}\"}} {}\n",
                    s.batches
                ));
            }
            out.push_str("# TYPE engine_shard_queries_total counter\n");
            for (i, s) in self.shards.iter().enumerate() {
                out.push_str(&format!(
                    "engine_shard_queries_total{{shard=\"{i}\"}} {}\n",
                    s.queries
                ));
            }
        }
        if self.families.iter().any(|&f| f > 0) {
            out.push_str("# TYPE engine_family_items_total counter\n");
            for (i, &f) in self.families.iter().enumerate() {
                out.push_str(&format!(
                    "engine_family_items_total{{family=\"{i}\"}} {f}\n"
                ));
            }
        }
        for (name, h) in &self.hists {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for &(_lo, hi, c) in &h.buckets {
                cumulative += c;
                out.push_str(&format!("{name}_bucket{{le=\"{hi}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }
}

fn parse_hist(h: &JsonValue) -> Result<HistogramSnapshot, String> {
    let field = |name: &str| h.get(name).and_then(JsonValue::as_u64).unwrap_or(0);
    let mut buckets = Vec::new();
    if let Some(arr) = h.get("buckets").and_then(JsonValue::as_array) {
        for b in arr {
            let b = b.as_array().ok_or("histogram bucket is not an array")?;
            if b.len() != 3 {
                return Err("histogram bucket is not a [lo, hi, count] triple".into());
            }
            let lo = b[0].as_u64().ok_or("bucket lo is not a u64")?;
            let hi = b[1].as_u64().ok_or("bucket hi is not a u64")?;
            let c = b[2].as_u64().ok_or("bucket count is not a u64")?;
            buckets.push((lo, hi, c));
        }
    }
    Ok(HistogramSnapshot {
        count: field("count"),
        sum: field("sum"),
        min: field("min"),
        max: field("max"),
        buckets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_counts_and_observes() {
        let reg = MetricsRegistry::new();
        reg.incr(MetricId::CliItems, 3);
        reg.incr(MetricId::CliItems, 2);
        reg.observe(HistId::PushLatencyNs, 100);
        reg.observe(HistId::PushLatencyNs, 300);
        assert_eq!(reg.counter(MetricId::CliItems), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cli_items_total"), Some(5));
        assert_eq!(snap.counter("cli_queries_total"), Some(0));
        let h = snap.hist("push_latency_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 100);
    }

    #[test]
    fn shard_and_family_dimensions() {
        let reg = MetricsRegistry::new();
        reg.incr_shard(0, ShardStat::Items, 10);
        reg.incr_shard(2, ShardStat::Items, 7);
        reg.incr_shard(2, ShardStat::Batches, 1);
        reg.incr_shard(2, ShardStat::Queries, 3);
        reg.incr_family(5, 4);
        reg.incr_family(5 + NUM_KEY_FAMILIES, 1); // masks into slot 5
        assert_eq!(reg.shard_stat(2, ShardStat::Items), 7);
        let snap = reg.snapshot();
        // Trailing zero shards trimmed: highest touched shard is 2.
        assert_eq!(snap.shards.len(), 3);
        assert_eq!(snap.shards[0].items, 10);
        assert!(snap.shards[1].is_zero());
        assert_eq!(
            snap.shards[2],
            ShardStats {
                items: 7,
                batches: 1,
                queries: 3
            }
        );
        assert_eq!(snap.families.len(), NUM_KEY_FAMILIES);
        assert_eq!(snap.families[5], 5);
    }

    #[test]
    fn out_of_range_shards_fold_into_last_slot() {
        let reg = MetricsRegistry::new();
        reg.incr_shard(MAX_TRACKED_SHARDS + 10, ShardStat::Items, 2);
        reg.incr_shard(1, ShardStat::Items, 3);
        let snap = reg.snapshot();
        assert_eq!(snap.shards.len(), MAX_TRACKED_SHARDS);
        let total: u64 = snap.shards.iter().map(|s| s.items).sum();
        assert_eq!(total, 5, "folding keeps the shard sum equal to the global");
    }

    #[test]
    fn text_elides_zeroes() {
        let reg = MetricsRegistry::new();
        reg.incr(MetricId::WavePushesTotal, 7);
        let text = reg.snapshot().to_text();
        assert!(text.contains("wave_pushes_total"));
        assert!(!text.contains("cli_items_total"));
    }

    #[test]
    fn json_shape_is_parsable_by_eye() {
        let reg = MetricsRegistry::new();
        reg.incr(MetricId::WaveQueriesExact, 1);
        reg.observe(HistId::QueryLatencyNs, 50);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""wave_queries_exact":1"#));
        assert!(json.contains(r#""query_latency_ns":{"count":1"#));
        // Every name appears exactly once, even at zero, so downstream
        // JSON consumers get a stable schema.
        assert!(json.contains(r#""eh_pushes_total":0"#));
        // Full bucket detail rides along for remote quantiles.
        assert!(json.contains(r#""buckets":[[50,51,1]]"#));
    }

    #[test]
    fn json_roundtrips_through_from_json() {
        let reg = MetricsRegistry::new();
        reg.incr(MetricId::EngineItemsIngested, 1234);
        reg.observe(HistId::NetRequestNs, 800);
        reg.observe(HistId::NetRequestNs, 80_000);
        reg.incr_shard(0, ShardStat::Items, 1000);
        reg.incr_shard(1, ShardStat::Items, 234);
        reg.incr_family(3, 1234);
        let snap = reg.snapshot();
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        // Quantiles recompute identically from transported buckets.
        assert_eq!(
            parsed.hist("net_request_ns").unwrap().p99(),
            snap.hist("net_request_ns").unwrap().p99()
        );
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(MetricsSnapshot::from_json("not json").is_err());
        assert!(MetricsSnapshot::from_json("{}").is_err());
    }

    #[test]
    fn prometheus_exposition_is_pinned() {
        let snap = MetricsSnapshot {
            counters: vec![("cli_items_total", 3), ("net_frames_sent_total", 0)],
            hists: vec![(
                "query_latency_ns",
                HistogramSnapshot {
                    count: 3,
                    sum: 36,
                    min: 2,
                    max: 20,
                    buckets: vec![(2, 2, 2), (20, 21, 1)],
                },
            )],
            shards: vec![
                ShardStats {
                    items: 5,
                    batches: 1,
                    queries: 0,
                },
                ShardStats {
                    items: 3,
                    batches: 1,
                    queries: 2,
                },
            ],
            families: vec![0, 8],
        };
        let expected = "\
# TYPE cli_items_total counter
cli_items_total 3
# TYPE net_frames_sent_total counter
net_frames_sent_total 0
# TYPE engine_shard_items_total counter
engine_shard_items_total{shard=\"0\"} 5
engine_shard_items_total{shard=\"1\"} 3
# TYPE engine_shard_batches_total counter
engine_shard_batches_total{shard=\"0\"} 1
engine_shard_batches_total{shard=\"1\"} 1
# TYPE engine_shard_queries_total counter
engine_shard_queries_total{shard=\"0\"} 0
engine_shard_queries_total{shard=\"1\"} 2
# TYPE engine_family_items_total counter
engine_family_items_total{family=\"0\"} 0
engine_family_items_total{family=\"1\"} 8
# TYPE query_latency_ns histogram
query_latency_ns_bucket{le=\"2\"} 2
query_latency_ns_bucket{le=\"21\"} 3
query_latency_ns_bucket{le=\"+Inf\"} 3
query_latency_ns_sum 36
query_latency_ns_count 3
";
        assert_eq!(snap.to_prometheus(), expected);
    }

    #[test]
    fn reset_clears_everything() {
        let reg = MetricsRegistry::new();
        reg.incr(MetricId::EhPushes, 9);
        reg.observe(HistId::EhCascadeLen, 4);
        reg.incr_shard(1, ShardStat::Items, 2);
        reg.incr_family(2, 2);
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("eh_pushes_total"), Some(0));
        assert_eq!(snap.hist("eh_cascade_len").unwrap().count, 0);
        assert!(snap.shards.is_empty());
        assert!(snap.families.iter().all(|&f| f == 0));
    }

    #[test]
    fn recorder_hook_returns_live_snapshot() {
        let reg = MetricsRegistry::new();
        reg.incr(MetricId::CliItems, 2);
        let snap = Recorder::metrics_snapshot(&reg).unwrap();
        assert_eq!(snap.counter("cli_items_total"), Some(2));
    }

    #[test]
    fn shared_across_threads() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reg = reg.clone();
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        reg.incr(MetricId::PartyMessagesSent, 1);
                    }
                });
            }
        });
        assert_eq!(reg.counter(MetricId::PartyMessagesSent), 4_000);
    }
}
