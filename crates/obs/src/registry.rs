//! The registry: a fixed set of well-known counters and histograms that
//! itself implements [`Recorder`], so it can be handed directly to
//! instrumented code.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::histogram::{HistogramSnapshot, LogHistogram};
use crate::json::JsonWriter;
use crate::recorder::{Event, HistId, MetricId, Recorder, NUM_HISTS, NUM_METRICS};

/// Lock-free store for every [`MetricId`] counter and [`HistId`]
/// histogram. Shareable across threads behind `&` or `Arc`.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: [AtomicU64; NUM_METRICS],
    hists: [LogHistogram; NUM_HISTS],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| LogHistogram::new()),
        }
    }

    pub fn counter(&self, id: MetricId) -> u64 {
        self.counters[id as usize].load(Ordering::Relaxed)
    }

    pub fn histogram(&self, id: HistId) -> &LogHistogram {
        &self.hists[id as usize]
    }

    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for h in &self.hists {
            h.reset();
        }
    }

    /// Point-in-time copy of every metric, as a plain struct.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: MetricId::ALL
                .iter()
                .map(|&id| (id.name(), self.counter(id)))
                .collect(),
            hists: HistId::ALL
                .iter()
                .map(|&id| (id.name(), self.hists[id as usize].snapshot()))
                .collect(),
        }
    }
}

impl Recorder for MetricsRegistry {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn incr(&self, id: MetricId, by: u64) {
        self.counters[id as usize].fetch_add(by, Ordering::Relaxed);
    }

    #[inline]
    fn observe(&self, id: HistId, value: u64) {
        self.hists[id as usize].record(value);
    }

    #[inline]
    fn event(&self, _event: Event<'_>) {}
}

/// Serializable point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, in [`MetricId::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, snapshot)` for every histogram, in [`HistId::ALL`] order.
    pub hists: Vec<(&'static str, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    pub fn hist(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.hists.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Multi-line human-readable rendering. Zero counters and empty
    /// histograms are elided so small runs stay small.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== metrics ==\n");
        for &(name, v) in &self.counters {
            if v > 0 {
                out.push_str(&format!("{name:<28} {v}\n"));
            }
        }
        for (name, h) in &self.hists {
            if h.count > 0 {
                out.push_str(&format!(
                    "{:<28} count={} mean={:.1} p50={:.0} p90={:.0} p99={:.0} p999={:.0} max={}\n",
                    name,
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.p999(),
                    h.max,
                ));
            }
        }
        out
    }

    /// Single JSON object: counters inline, histograms as sub-objects.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_object("counters");
        for &(name, v) in &self.counters {
            w.field_u64(name, v);
        }
        w.end_object();
        w.field_object("histograms");
        for (name, h) in &self.hists {
            w.field_object(name);
            w.field_u64("count", h.count);
            w.field_u64("min", h.min);
            w.field_u64("max", h.max);
            w.field_f64("mean", h.mean());
            w.field_f64("p50", h.p50());
            w.field_f64("p90", h.p90());
            w.field_f64("p99", h.p99());
            w.field_f64("p999", h.p999());
            w.end_object();
        }
        w.end_object();
        w.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_counts_and_observes() {
        let reg = MetricsRegistry::new();
        reg.incr(MetricId::CliItems, 3);
        reg.incr(MetricId::CliItems, 2);
        reg.observe(HistId::PushLatencyNs, 100);
        reg.observe(HistId::PushLatencyNs, 300);
        assert_eq!(reg.counter(MetricId::CliItems), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cli_items_total"), Some(5));
        assert_eq!(snap.counter("cli_queries_total"), Some(0));
        let h = snap.hist("push_latency_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 100);
    }

    #[test]
    fn text_elides_zeroes() {
        let reg = MetricsRegistry::new();
        reg.incr(MetricId::WavePushesTotal, 7);
        let text = reg.snapshot().to_text();
        assert!(text.contains("wave_pushes_total"));
        assert!(!text.contains("cli_items_total"));
    }

    #[test]
    fn json_shape_is_parsable_by_eye() {
        let reg = MetricsRegistry::new();
        reg.incr(MetricId::WaveQueriesExact, 1);
        reg.observe(HistId::QueryLatencyNs, 50);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""wave_queries_exact":1"#));
        assert!(json.contains(r#""query_latency_ns":{"count":1"#));
        // Every name appears exactly once, even at zero, so downstream
        // JSON consumers get a stable schema.
        assert!(json.contains(r#""eh_pushes_total":0"#));
    }

    #[test]
    fn reset_clears_everything() {
        let reg = MetricsRegistry::new();
        reg.incr(MetricId::EhPushes, 9);
        reg.observe(HistId::EhCascadeLen, 4);
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("eh_pushes_total"), Some(0));
        assert_eq!(snap.hist("eh_cascade_len").unwrap().count, 0);
    }

    #[test]
    fn shared_across_threads() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reg = reg.clone();
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        reg.incr(MetricId::PartyMessagesSent, 1);
                    }
                });
            }
        });
        assert_eq!(reg.counter(MetricId::PartyMessagesSent), 4_000);
    }
}
