//! `waves-obs`: zero-dependency metrics and event tracing for the waves
//! workspace.
//!
//! The paper's claims are quantitative — O(1) worst-case per-item time
//! (Theorem 1), space within stated word bounds, `t`-scalar query-time
//! communication — so the runtime exposes them as live signals:
//!
//! * lock-free scalar counters (relaxed atomics behind [`MetricId`]);
//! * [`LogHistogram`] — log-bucketed (HDR-style) latency histogram with
//!   p50/p90/p99/p999/max summaries, shared by the offline bench harness
//!   and live `--stats` runs so both agree on one definition of tail
//!   latency;
//! * [`Recorder`] — the structural-event sink instrumented code reports
//!   into. The hot paths are generic over `R: Recorder`, and
//!   [`NoopRecorder`]'s methods are empty `#[inline(always)]` bodies, so
//!   the monomorphized disabled path compiles to exactly the
//!   uninstrumented code (verified by the `obs-overhead` experiment in
//!   `waves-bench`);
//! * [`MetricsRegistry`] — a fixed set of well-known counters and
//!   histograms ([`MetricId`], [`HistId`]) that itself implements
//!   [`Recorder`], snapshots to a plain [`MetricsSnapshot`] struct, and
//!   renders as text, hand-rolled JSON (no serde), or Prometheus text
//!   exposition — plus per-shard and per-key-family dimensions backed
//!   by flat atomic arrays, so snapshots show engine load skew;
//! * [`trace`] — request tracing: [`Span`]/[`TraceId`] records on a
//!   monotonic process clock, retained by the ring-buffered
//!   [`SpanRecorder`], gated behind [`Recorder::trace_enabled`] with
//!   the same noop-monomorphization contract as metrics;
//! * [`JsonValue`] — a strict minimal JSON parser, enough to decode a
//!   remote [`MetricsSnapshot`] fetched over the wire.
//!
//! Everything is std-only: the crate has no dependencies.

mod histogram;
mod json;
mod recorder;
pub mod registry;
pub mod trace;

pub use histogram::{HistogramSnapshot, LogHistogram};
pub use json::{JsonValue, JsonWriter};
pub use recorder::{
    BufferSink, Event, Fanout, HistId, MetricId, NoopRecorder, OwnedEvent, Recorder, ShardStat,
    MAX_TRACKED_SHARDS, NUM_KEY_FAMILIES,
};
pub use registry::{MetricsRegistry, MetricsSnapshot, ShardStats};
pub use trace::{Span, SpanRecorder, Stage, TraceCtx, TraceId};
