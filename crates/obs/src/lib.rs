//! `waves-obs`: zero-dependency metrics and event tracing for the waves
//! workspace.
//!
//! The paper's claims are quantitative — O(1) worst-case per-item time
//! (Theorem 1), space within stated word bounds, `t`-scalar query-time
//! communication — so the runtime exposes them as live signals:
//!
//! * lock-free scalar counters (relaxed atomics behind [`MetricId`]);
//! * [`LogHistogram`] — log-bucketed (HDR-style) latency histogram with
//!   p50/p90/p99/p999/max summaries, shared by the offline bench harness
//!   and live `--stats` runs so both agree on one definition of tail
//!   latency;
//! * [`Recorder`] — the structural-event sink instrumented code reports
//!   into. The hot paths are generic over `R: Recorder`, and
//!   [`NoopRecorder`]'s methods are empty `#[inline(always)]` bodies, so
//!   the monomorphized disabled path compiles to exactly the
//!   uninstrumented code (verified by the `obs-overhead` experiment in
//!   `waves-bench`);
//! * [`MetricsRegistry`] — a fixed set of well-known counters and
//!   histograms ([`MetricId`], [`HistId`]) that itself implements
//!   [`Recorder`], snapshots to a plain [`MetricsSnapshot`] struct, and
//!   renders as text or hand-rolled JSON (no serde).
//!
//! Everything is std-only: the crate has no dependencies.

mod histogram;
mod json;
mod recorder;
mod registry;

pub use histogram::{HistogramSnapshot, LogHistogram};
pub use json::JsonWriter;
pub use recorder::{
    BufferSink, Event, Fanout, HistId, MetricId, NoopRecorder, OwnedEvent, Recorder,
};
pub use registry::{MetricsRegistry, MetricsSnapshot};
