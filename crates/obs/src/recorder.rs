//! The recorder abstraction: the sink instrumented code reports into.
//!
//! Hot paths are generic over `R: Recorder + ?Sized`. [`NoopRecorder`]
//! implements every method as an empty `#[inline(always)]` body, so the
//! monomorphized disabled path is exactly the uninstrumented code — the
//! `obs-overhead` experiment in `waves-bench` measures this contract.

use std::fmt;
use std::sync::Mutex;

/// Well-known monotonic counters. Fixed at compile time so the registry
/// can back them with a flat atomic array — no hashing on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum MetricId {
    /// Bits pushed into a wave (0s and 1s).
    WavePushesTotal,
    /// 1-bits pushed (each allocates a wave entry).
    WaveOnesTotal,
    /// Entries currently stored across instrumented waves (gauge-like:
    /// incremented on store, decremented via the expired/evicted
    /// counters when reading the snapshot).
    WaveEntriesStored,
    /// Entries dropped because they aged out of the window.
    WaveEntriesExpired,
    /// Entries evicted from a full per-level queue (the O(1) bound).
    WaveEntriesEvicted,
    /// Calls to the rank→level oracle.
    WaveLevelOracleCalls,
    /// Window queries answered exactly.
    WaveQueriesExact,
    /// Window queries answered approximately (bracketed estimate).
    WaveQueriesApprox,
    /// Items pushed into an exponential histogram.
    EhPushes,
    /// Cascading-merge episodes in the EH (a push that merged >= 1 pair).
    EhCascades,
    /// Total bucket pairs merged across all cascades.
    EhBucketsMerged,
    /// Referee combine operations in the distributed runtime.
    RefereeCombines,
    /// Messages sent party -> referee.
    PartyMessagesSent,
    /// Bytes sent party -> referee.
    PartyBytesSent,
    /// Items ingested by the CLI protocol loop.
    CliItems,
    /// Queries served by the CLI protocol loop.
    CliQueries,
    /// Stream bits ingested by the serving engine (across all shards).
    EngineItemsIngested,
    /// Per-shard batches delivered to engine shard workers.
    EngineBatchesIngested,
    /// Per-key queries served by the engine.
    EngineQueriesServed,
    /// Ingest attempts rejected because a shard queue was full.
    EngineBackpressureEvents,
    /// Items dropped on the floor by a rejected `ingest_batch` sub-batch.
    EngineItemsDropped,
    /// Wire frames written by the net client and server.
    NetFramesSent,
    /// Wire frames read by the net client and server.
    NetFramesReceived,
    /// Bytes written to sockets (header + payload).
    NetBytesSent,
    /// Bytes read from sockets (header + payload).
    NetBytesReceived,
    /// Connections accepted by the net server.
    NetConnectionsAccepted,
    /// Requests that produced an error response or failed to decode.
    NetRequestErrors,
    /// Batch records appended to a write-ahead log.
    StoreWalAppends,
    /// Bytes appended to write-ahead logs (framing + payload).
    StoreWalBytes,
    /// `fsync`/`File::sync_data` calls issued by the store layer.
    StoreFsyncs,
    /// Checkpoints written (one per shard per checkpoint round).
    StoreCheckpoints,
    /// WAL segment files deleted after a covering checkpoint.
    StoreSegmentsReclaimed,
    /// Batch records replayed from the WAL during recovery.
    StoreBatchesRecovered,
    /// Requests whose server-side handling exceeded the slow-request
    /// threshold (each also emits a `net.slow_request` event).
    NetSlowRequests,
    /// Times a shard's WAL was disabled after an append error (nonzero
    /// means the engine is running degraded, without durability).
    StoreWalDisabled,
    /// Synopses installed over engine shard state (replication apply:
    /// a REPLICATE frame replaced the local synopsis for a key).
    EngineSynopsesInstalled,
    /// Cluster client requests that failed over to the next replica in
    /// ring order after the primary timed out or dropped.
    ClusterFailovers,
    /// Synopsis replications shipped primary -> follower by the cluster
    /// client (one per follower per replicated key flush).
    ClusterReplicationsShipped,
    /// Anti-entropy rounds that re-shipped a key's synopsis to a
    /// follower after a reconnect (merge-on-rejoin).
    ClusterAntiEntropyMerges,
    /// Event-loop wakeups: epoll_wait returns observed by the server's
    /// poll thread (including waker-only wakeups).
    PollWakeups,
    /// Connections the event loop closed for falling behind: the
    /// per-connection write queue exceeded its byte cap (slow client).
    NetConnectionsEvicted,
    /// PUSH_DELTA frames installed by the monitor referee (a party's
    /// drift crossed its slack budget and advanced its sequence).
    MonitorPushes,
    /// Synopsis payload bytes carried by installed PUSH_DELTA frames.
    MonitorPushBytes,
    /// PUSH_DELTA frames rejected as stale: the sequence number did not
    /// advance the party's highest seen (retries, late reordering).
    MonitorStaleDeltas,
}

/// Number of [`MetricId`] variants (length of the registry's array).
pub const NUM_METRICS: usize = 44;

impl MetricId {
    pub const ALL: [MetricId; NUM_METRICS] = [
        MetricId::WavePushesTotal,
        MetricId::WaveOnesTotal,
        MetricId::WaveEntriesStored,
        MetricId::WaveEntriesExpired,
        MetricId::WaveEntriesEvicted,
        MetricId::WaveLevelOracleCalls,
        MetricId::WaveQueriesExact,
        MetricId::WaveQueriesApprox,
        MetricId::EhPushes,
        MetricId::EhCascades,
        MetricId::EhBucketsMerged,
        MetricId::RefereeCombines,
        MetricId::PartyMessagesSent,
        MetricId::PartyBytesSent,
        MetricId::CliItems,
        MetricId::CliQueries,
        MetricId::EngineItemsIngested,
        MetricId::EngineBatchesIngested,
        MetricId::EngineQueriesServed,
        MetricId::EngineBackpressureEvents,
        MetricId::EngineItemsDropped,
        MetricId::NetFramesSent,
        MetricId::NetFramesReceived,
        MetricId::NetBytesSent,
        MetricId::NetBytesReceived,
        MetricId::NetConnectionsAccepted,
        MetricId::NetRequestErrors,
        MetricId::StoreWalAppends,
        MetricId::StoreWalBytes,
        MetricId::StoreFsyncs,
        MetricId::StoreCheckpoints,
        MetricId::StoreSegmentsReclaimed,
        MetricId::StoreBatchesRecovered,
        MetricId::NetSlowRequests,
        MetricId::StoreWalDisabled,
        MetricId::EngineSynopsesInstalled,
        MetricId::ClusterFailovers,
        MetricId::ClusterReplicationsShipped,
        MetricId::ClusterAntiEntropyMerges,
        MetricId::PollWakeups,
        MetricId::NetConnectionsEvicted,
        MetricId::MonitorPushes,
        MetricId::MonitorPushBytes,
        MetricId::MonitorStaleDeltas,
    ];

    /// Stable snake_case name used in text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            MetricId::WavePushesTotal => "wave_pushes_total",
            MetricId::WaveOnesTotal => "wave_ones_total",
            MetricId::WaveEntriesStored => "wave_entries_stored",
            MetricId::WaveEntriesExpired => "wave_entries_expired",
            MetricId::WaveEntriesEvicted => "wave_entries_evicted",
            MetricId::WaveLevelOracleCalls => "wave_level_oracle_calls",
            MetricId::WaveQueriesExact => "wave_queries_exact",
            MetricId::WaveQueriesApprox => "wave_queries_approx",
            MetricId::EhPushes => "eh_pushes_total",
            MetricId::EhCascades => "eh_cascades_total",
            MetricId::EhBucketsMerged => "eh_buckets_merged_total",
            MetricId::RefereeCombines => "referee_combines_total",
            MetricId::PartyMessagesSent => "party_messages_sent_total",
            MetricId::PartyBytesSent => "party_bytes_sent_total",
            MetricId::CliItems => "cli_items_total",
            MetricId::CliQueries => "cli_queries_total",
            MetricId::EngineItemsIngested => "engine_items_ingested_total",
            MetricId::EngineBatchesIngested => "engine_batches_ingested_total",
            MetricId::EngineQueriesServed => "engine_queries_served_total",
            MetricId::EngineBackpressureEvents => "engine_backpressure_events_total",
            MetricId::EngineItemsDropped => "engine_items_dropped_total",
            MetricId::NetFramesSent => "net_frames_sent_total",
            MetricId::NetFramesReceived => "net_frames_received_total",
            MetricId::NetBytesSent => "net_bytes_sent_total",
            MetricId::NetBytesReceived => "net_bytes_received_total",
            MetricId::NetConnectionsAccepted => "net_connections_accepted_total",
            MetricId::NetRequestErrors => "net_request_errors_total",
            MetricId::StoreWalAppends => "store_wal_appends_total",
            MetricId::StoreWalBytes => "store_wal_bytes_total",
            MetricId::StoreFsyncs => "store_fsyncs_total",
            MetricId::StoreCheckpoints => "store_checkpoints_total",
            MetricId::StoreSegmentsReclaimed => "store_segments_reclaimed_total",
            MetricId::StoreBatchesRecovered => "store_batches_recovered_total",
            MetricId::NetSlowRequests => "net_slow_requests_total",
            MetricId::StoreWalDisabled => "store_wal_disabled_total",
            MetricId::EngineSynopsesInstalled => "engine_synopses_installed_total",
            MetricId::ClusterFailovers => "cluster_failovers_total",
            MetricId::ClusterReplicationsShipped => "cluster_replications_shipped_total",
            MetricId::ClusterAntiEntropyMerges => "cluster_anti_entropy_merges_total",
            MetricId::PollWakeups => "poll_wakeups_total",
            MetricId::NetConnectionsEvicted => "net_connections_evicted_total",
            MetricId::MonitorPushes => "monitor_pushes_total",
            MetricId::MonitorPushBytes => "monitor_push_bytes_total",
            MetricId::MonitorStaleDeltas => "monitor_stale_deltas_total",
        }
    }
}

/// Per-shard counters tracked by the registry's flat shard array.
/// Deliberately tiny: these are incremented on the shard-worker hot path
/// with nothing but an index computation (no hashing, no locks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ShardStat {
    /// Items (bits) applied by this shard's worker.
    Items,
    /// Ingest batches applied by this shard's worker.
    Batches,
    /// Queries answered by this shard's worker.
    Queries,
}

/// Number of [`ShardStat`] variants.
pub const NUM_SHARD_STATS: usize = 3;

/// Shards tracked individually by the registry. Engines with more
/// shards fold the overflow into the last slot, so sums over the shard
/// dimension always equal the corresponding global counter.
pub const MAX_TRACKED_SHARDS: usize = 64;

/// Key families tracked by the registry: the top 4 bits of the engine's
/// Fibonacci key mix, a coarse load-skew fingerprint that costs one
/// shift on the hot path (the mix is already computed for shard
/// routing).
pub const NUM_KEY_FAMILIES: usize = 16;

/// Well-known latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistId {
    /// Per-item push latency, nanoseconds.
    PushLatencyNs,
    /// Per-query latency, nanoseconds.
    QueryLatencyNs,
    /// Referee combine latency, nanoseconds.
    RefereeCombineNs,
    /// EH cascade length (buckets merged on a single push).
    EhCascadeLen,
    /// Engine shard-worker time to apply one ingest batch, nanoseconds.
    EngineIngestBatchNs,
    /// Engine end-to-end (send + reply) per-key query latency, ns.
    EngineQueryNs,
    /// Shard queue depth observed at each successful enqueue.
    EngineQueueDepth,
    /// Client-side request round-trip (write + server work + read), ns.
    NetRequestNs,
    /// Server-side time to decode, handle, and answer one frame, ns.
    NetServerFrameNs,
    /// Payload bytes per wire frame, sampled on every send.
    NetFrameBytes,
    /// Store-layer time to frame and append one batch record, ns.
    StoreWalAppendNs,
    /// Store-layer time per `fsync`/`sync_data` call, ns.
    StoreFsyncNs,
    /// Time to write one shard checkpoint (serialize + fsync + rename), ns.
    StoreCheckpointNs,
    /// Time to recover one shard (checkpoint load + WAL replay), ns.
    StoreRecoveryNs,
    /// Cluster replication lag: primary flush -> follower install
    /// acknowledged, per shipped synopsis, nanoseconds.
    ClusterReplicaLagNs,
    /// Ready events delivered per epoll_wait return (batching factor of
    /// the event loop; collapses toward 1 under light load).
    PollEventsPerWake,
    /// Bytes queued in a connection's write queue, sampled at each
    /// response enqueue (backpressure depth).
    NetWriteQueueBytes,
    /// Pipelined requests in flight on a connection, sampled at each
    /// request dispatch.
    NetInflightPerConn,
}

/// Number of [`HistId`] variants.
pub const NUM_HISTS: usize = 18;

impl HistId {
    pub const ALL: [HistId; NUM_HISTS] = [
        HistId::PushLatencyNs,
        HistId::QueryLatencyNs,
        HistId::RefereeCombineNs,
        HistId::EhCascadeLen,
        HistId::EngineIngestBatchNs,
        HistId::EngineQueryNs,
        HistId::EngineQueueDepth,
        HistId::NetRequestNs,
        HistId::NetServerFrameNs,
        HistId::NetFrameBytes,
        HistId::StoreWalAppendNs,
        HistId::StoreFsyncNs,
        HistId::StoreCheckpointNs,
        HistId::StoreRecoveryNs,
        HistId::ClusterReplicaLagNs,
        HistId::PollEventsPerWake,
        HistId::NetWriteQueueBytes,
        HistId::NetInflightPerConn,
    ];

    pub fn name(self) -> &'static str {
        match self {
            HistId::PushLatencyNs => "push_latency_ns",
            HistId::QueryLatencyNs => "query_latency_ns",
            HistId::RefereeCombineNs => "referee_combine_ns",
            HistId::EhCascadeLen => "eh_cascade_len",
            HistId::EngineIngestBatchNs => "engine_ingest_batch_ns",
            HistId::EngineQueryNs => "engine_query_ns",
            HistId::EngineQueueDepth => "engine_queue_depth",
            HistId::NetRequestNs => "net_request_ns",
            HistId::NetServerFrameNs => "net_server_frame_ns",
            HistId::NetFrameBytes => "net_frame_bytes",
            HistId::StoreWalAppendNs => "store_wal_append_ns",
            HistId::StoreFsyncNs => "store_fsync_ns",
            HistId::StoreCheckpointNs => "store_checkpoint_ns",
            HistId::StoreRecoveryNs => "store_recovery_ns",
            HistId::ClusterReplicaLagNs => "cluster_replica_lag_ns",
            HistId::PollEventsPerWake => "poll_events_per_wake",
            HistId::NetWriteQueueBytes => "net_write_queue_bytes",
            HistId::NetInflightPerConn => "net_inflight_per_conn",
        }
    }
}

/// A borrowed structural event: a name plus key/value fields. Allocation
/// free on the emitting side; sinks that keep events copy into
/// [`OwnedEvent`].
#[derive(Debug, Clone, Copy)]
pub struct Event<'a> {
    pub name: &'static str,
    pub fields: &'a [(&'static str, u64)],
}

/// An event copied out of the hot path by a buffering sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedEvent {
    pub name: &'static str,
    pub fields: Vec<(&'static str, u64)>,
}

impl fmt::Display for OwnedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// The sink instrumented code reports into. Every method has an empty
/// default body so sinks implement only what they care about, and the
/// noop path costs nothing.
pub trait Recorder {
    /// Whether this recorder observes anything at all. Instrumented code
    /// may use this to skip clock reads for latency histograms.
    #[inline(always)]
    fn enabled(&self) -> bool {
        true
    }

    #[inline(always)]
    fn incr(&self, id: MetricId, by: u64) {
        let _ = (id, by);
    }

    #[inline(always)]
    fn observe(&self, id: HistId, value: u64) {
        let _ = (id, value);
    }

    #[inline(always)]
    fn event(&self, event: Event<'_>) {
        let _ = event;
    }

    /// Whether this recorder keeps completed trace spans. Span sites are
    /// gated on this exactly like `enabled()` gates latency clock reads,
    /// so the noop path never constructs a [`Span`](crate::trace::Span).
    #[inline(always)]
    fn trace_enabled(&self) -> bool {
        false
    }

    /// Record one completed trace span.
    #[inline(always)]
    fn span(&self, span: crate::trace::Span) {
        let _ = span;
    }

    /// Increment a per-shard counter (see
    /// [`MAX_TRACKED_SHARDS`]; sinks clamp out-of-range indices).
    #[inline(always)]
    fn incr_shard(&self, shard: usize, stat: ShardStat, by: u64) {
        let _ = (shard, stat, by);
    }

    /// Increment a per-key-family ingest counter (see
    /// [`NUM_KEY_FAMILIES`]; sinks mask out-of-range indices).
    #[inline(always)]
    fn incr_family(&self, family: usize, by: u64) {
        let _ = (family, by);
    }

    /// A live metrics snapshot, if this recorder (or one it fans out
    /// to) is backed by a registry. Lets generic servers answer remote
    /// STATS requests without naming a concrete recorder type.
    fn metrics_snapshot(&self) -> Option<crate::registry::MetricsSnapshot> {
        None
    }
}

/// The disabled recorder: every method is an empty inline body, so
/// code monomorphized over it is identical to uninstrumented code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

impl<T: Recorder + ?Sized> Recorder for &T {
    #[inline(always)]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline(always)]
    fn incr(&self, id: MetricId, by: u64) {
        (**self).incr(id, by)
    }

    #[inline(always)]
    fn observe(&self, id: HistId, value: u64) {
        (**self).observe(id, value)
    }

    #[inline(always)]
    fn event(&self, event: Event<'_>) {
        (**self).event(event)
    }

    #[inline(always)]
    fn trace_enabled(&self) -> bool {
        (**self).trace_enabled()
    }

    #[inline(always)]
    fn span(&self, span: crate::trace::Span) {
        (**self).span(span)
    }

    #[inline(always)]
    fn incr_shard(&self, shard: usize, stat: ShardStat, by: u64) {
        (**self).incr_shard(shard, stat, by)
    }

    #[inline(always)]
    fn incr_family(&self, family: usize, by: u64) {
        (**self).incr_family(family, by)
    }

    fn metrics_snapshot(&self) -> Option<crate::registry::MetricsSnapshot> {
        (**self).metrics_snapshot()
    }
}

/// Broadcasts to two recorders (compose into wider fans by nesting).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fanout<A, B>(pub A, pub B);

impl<A: Recorder, B: Recorder> Recorder for Fanout<A, B> {
    #[inline]
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    #[inline]
    fn incr(&self, id: MetricId, by: u64) {
        self.0.incr(id, by);
        self.1.incr(id, by);
    }

    #[inline]
    fn observe(&self, id: HistId, value: u64) {
        self.0.observe(id, value);
        self.1.observe(id, value);
    }

    #[inline]
    fn event(&self, event: Event<'_>) {
        self.0.event(event);
        self.1.event(event);
    }

    #[inline]
    fn trace_enabled(&self) -> bool {
        self.0.trace_enabled() || self.1.trace_enabled()
    }

    #[inline]
    fn span(&self, span: crate::trace::Span) {
        self.0.span(span);
        self.1.span(span);
    }

    #[inline]
    fn incr_shard(&self, shard: usize, stat: ShardStat, by: u64) {
        self.0.incr_shard(shard, stat, by);
        self.1.incr_shard(shard, stat, by);
    }

    #[inline]
    fn incr_family(&self, family: usize, by: u64) {
        self.0.incr_family(family, by);
        self.1.incr_family(family, by);
    }

    fn metrics_snapshot(&self) -> Option<crate::registry::MetricsSnapshot> {
        self.0
            .metrics_snapshot()
            .or_else(|| self.1.metrics_snapshot())
    }
}

/// A sink that buffers structural events for later inspection — the
/// test-facing replacement for a tracing subscriber.
#[derive(Debug, Default)]
pub struct BufferSink {
    events: Mutex<Vec<OwnedEvent>>,
}

impl BufferSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn drain(&self) -> Vec<OwnedEvent> {
        std::mem::take(&mut self.events.lock().unwrap())
    }

    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for BufferSink {
    fn event(&self, event: Event<'_>) {
        self.events.lock().unwrap().push(OwnedEvent {
            name: event.name,
            fields: event.fields.to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_ids_are_dense_and_named() {
        for (i, id) in MetricId::ALL.iter().enumerate() {
            assert_eq!(*id as usize, i);
            assert!(!id.name().is_empty());
        }
        for (i, id) in HistId::ALL.iter().enumerate() {
            assert_eq!(*id as usize, i);
            assert!(!id.name().is_empty());
        }
    }

    #[test]
    fn noop_is_disabled() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        r.incr(MetricId::CliItems, 1);
        r.observe(HistId::PushLatencyNs, 1);
        r.event(Event {
            name: "x",
            fields: &[],
        });
    }

    #[test]
    fn buffer_sink_captures_events() {
        let sink = BufferSink::new();
        sink.event(Event {
            name: "wave_evict",
            fields: &[("level", 3), ("pos", 17)],
        });
        assert_eq!(sink.len(), 1);
        let evs = sink.drain();
        assert_eq!(evs[0].name, "wave_evict");
        assert_eq!(evs[0].fields, vec![("level", 3), ("pos", 17)]);
        assert_eq!(evs[0].to_string(), "wave_evict level=3 pos=17");
        assert!(sink.is_empty());
    }

    #[test]
    fn noop_trace_is_disabled() {
        let r = NoopRecorder;
        assert!(!r.trace_enabled());
        assert!(r.metrics_snapshot().is_none());
        // Default bodies: must be callable and do nothing.
        r.incr_shard(3, ShardStat::Items, 5);
        r.incr_family(7, 1);
        r.span(crate::trace::Span {
            trace: crate::trace::TraceId(1),
            id: 2,
            parent: 0,
            stage: crate::trace::Stage::Request,
            start_ns: 0,
            dur_ns: 1,
        });
    }

    #[test]
    fn buffer_sink_concurrent_drain_sees_all() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 500;
        let sink = BufferSink::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let sink = &sink;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        sink.event(Event {
                            name: "smoke",
                            fields: &[("t", t), ("i", i)],
                        });
                    }
                });
            }
        });
        let evs = sink.drain();
        assert_eq!(evs.len(), (THREADS * PER_THREAD) as usize);
        // Every (t, i) pair arrived exactly once.
        let mut seen = std::collections::HashSet::new();
        for ev in &evs {
            assert_eq!(ev.name, "smoke");
            assert!(seen.insert(ev.fields.clone()), "duplicate event {ev}");
        }
        assert!(sink.is_empty());
    }

    #[test]
    fn fanout_reaches_both() {
        let a = BufferSink::new();
        let b = BufferSink::new();
        let f = Fanout(&a, &b);
        assert!(f.enabled());
        f.event(Event {
            name: "e",
            fields: &[],
        });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
