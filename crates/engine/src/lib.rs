//! `waves-engine`: a keyed, sharded, multi-threaded serving layer that
//! owns many independent sliding-window synopses (one per key — think
//! one per user, per flow, per sensor) behind a small API.
//!
//! The paper's synopses are single-stream values driven one bit at a
//! time; the continuous-monitoring literature the ROADMAP targets
//! (Chan et al., Ben Basat et al.) instead assumes a long-lived service
//! maintaining *millions* of window synopses under sustained ingest.
//! This crate is that missing layer:
//!
//! * keys hash to one of `num_shards` worker threads (std threads +
//!   mpsc — the workspace is std-only), each owning a private
//!   `HashMap<Key, S>` so the hot path takes **no cross-shard locks**;
//! * ingestion flows through **one** entry point, [`Engine::ingest`],
//!   taking an [`IngestRequest`]: keyed **word-packed** bit batches
//!   ([`waves_core::Bits`] — 64 bits per queue/WAL/apply step), an
//!   optional blocking mode, and an optional [`TraceCtx`]. Non-blocking
//!   requests get explicit backpressure over bounded queues —
//!   [`WaveError::Backpressure`] when a shard queue is full, with shed
//!   items counted in [`Engine::dropped_items`] — while
//!   `.blocking(true)` trades latency for losslessness (replay and
//!   benchmarking paths);
//! * queries and snapshots travel through the same per-shard FIFO as
//!   ingest batches, so a query observes every batch the same caller
//!   enqueued before it (per-key read-your-writes);
//! * everything reports into `waves-obs`: ingest/query latency
//!   histograms, queue depth, and per-shard keys/bytes via
//!   [`Engine::snapshot`];
//! * optional durability via `waves-store`: with
//!   [`EngineConfigBuilder::persist`] set, each shard owns a private
//!   write-ahead log (appended *before* a batch is applied, no
//!   cross-shard lock) plus periodic checkpoints of every key's
//!   synopsis bytes. Construction recovers: newest valid checkpoint,
//!   then the acknowledged WAL tail, so a restarted engine answers
//!   exactly like one that never stopped. Clean shutdown writes a final
//!   checkpoint regardless of sync policy.
//!
//! The engine is generic over any [`BitSynopsis`] + `Send` synopsis (the
//! deterministic wave by default, the exponential-histogram baseline
//! via [`Engine::with_factory`]) and over the recorder, so the disabled
//! observability path monomorphizes to nothing, like the rest of the
//! workspace.
//!
//! ```
//! use waves_core::DetWave;
//! use waves_engine::{Engine, EngineConfig, IngestRequest};
//!
//! let cfg = EngineConfig::builder().num_shards(2).max_window(128).eps(0.25).build();
//! let engine = Engine::new(cfg).unwrap();
//! engine.ingest(IngestRequest::of(7, [true, false, true]).blocking(true)).unwrap();
//! engine.flush();
//! let est = engine.query(7, 128).unwrap();
//! assert_eq!(est.value, 2.0);
//! ```

use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use waves_core::{BitSynopsis, Bits, DetWave, Estimate, SynopsisCodec, WaveError};
use waves_obs::trace::{next_span_id, now_ns, Span, Stage, TraceCtx};
use waves_obs::{Event, HistId, MetricId, NoopRecorder, Recorder, ShardStat};
use waves_store::{ShardStore, Store};

pub use waves_store::{PersistConfig, SyncPolicy};

/// Stream identity: every key owns an independent synopsis.
pub type Key = u64;

/// One ingest event: a key plus a word-packed batch of its stream bits,
/// oldest first.
pub type KeyedBits = (Key, Bits);

/// The single ingest entry point's request: keyed word-packed batches
/// plus delivery options. Replaces the old
/// `ingest`/`ingest_batch`/`ingest_blocking`/`ingest_batch_traced`
/// matrix — every combination is one builder chain:
///
/// ```
/// use waves_engine::IngestRequest;
/// use waves_obs::trace::TraceCtx;
///
/// let _one = IngestRequest::of(7, [true, false, true]);
/// let _lossless = IngestRequest::of(7, [true; 64]).blocking(true);
/// let _traced = IngestRequest::new()
///     .entry(1, [true])
///     .entry(2, [false, true])
///     .traced(TraceCtx::NONE);
/// ```
///
/// The struct is `#[non_exhaustive]` so future delivery options (e.g.
/// deadlines) can land without breaking callers; construct via
/// [`IngestRequest::new`] / [`IngestRequest::of`] /
/// [`IngestRequest::batch`] and the builder methods.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct IngestRequest {
    /// Keyed word-packed batches, oldest bits first. Order is preserved
    /// per shard (and a key always maps to one shard).
    pub entries: Vec<KeyedBits>,
    /// Wait for queue space instead of shedding on a full shard queue.
    /// Defaults to `false` (non-blocking with backpressure).
    pub blocking: bool,
    /// Trace context; [`TraceCtx::NONE`] (the default) records nothing.
    pub ctx: TraceCtx,
}

impl Default for IngestRequest {
    fn default() -> Self {
        IngestRequest {
            entries: Vec::new(),
            blocking: false,
            ctx: TraceCtx::NONE,
        }
    }
}

impl IngestRequest {
    /// An empty request; add entries with [`IngestRequest::entry`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-entry request: `key`'s next `bits`, oldest first.
    /// Accepts anything convertible to [`Bits`] (`&[bool]`, `[bool; N]`,
    /// `Vec<bool>`, or an already-packed buffer).
    pub fn of(key: Key, bits: impl Into<Bits>) -> Self {
        Self::new().entry(key, bits)
    }

    /// A multi-entry request from already-assembled keyed batches.
    pub fn batch(entries: Vec<KeyedBits>) -> Self {
        IngestRequest {
            entries,
            ..Self::default()
        }
    }

    /// Append one keyed batch.
    pub fn entry(mut self, key: Key, bits: impl Into<Bits>) -> Self {
        self.entries.push((key, bits.into()));
        self
    }

    /// Wait for queue space instead of shedding (default `false`).
    pub fn blocking(mut self, blocking: bool) -> Self {
        self.blocking = blocking;
        self
    }

    /// Record queue-wait, apply, and WAL spans under `ctx`.
    pub fn traced(mut self, ctx: TraceCtx) -> Self {
        self.ctx = ctx;
        self
    }
}

/// Engine configuration. Construct via [`EngineConfig::builder`]; the
/// defaults serve a small deployment (4 shards, 1024-batch queues,
/// window 1024 at 10% error).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; keys hash across them. At least 1.
    pub num_shards: usize,
    /// Bounded per-shard command-queue capacity (ingest batches plus
    /// in-flight queries). At least 1.
    pub queue_capacity: usize,
    /// Maximum queryable window `N` for every per-key synopsis.
    pub max_window: u64,
    /// Relative error bound for every per-key synopsis.
    pub eps: f64,
    /// Durability settings; `None` (the default) serves from memory
    /// only. With `Some`, construction recovers prior state from the
    /// directory and every shard write-ahead-logs its batches.
    pub persist: Option<PersistConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_shards: 4,
            queue_capacity: 1024,
            max_window: 1024,
            eps: 0.1,
            persist: None,
        }
    }
}

impl EngineConfig {
    /// Start building a config: `EngineConfig::builder().num_shards(8).build()`.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            cfg: EngineConfig::default(),
        }
    }
}

/// Builder for [`EngineConfig`]. Shard count and queue capacity are
/// clamped to at least 1; the synopsis parameters (`max_window`, `eps`)
/// are validated when the engine constructs its first synopsis, so
/// `build()` itself is infallible.
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
}

impl EngineConfigBuilder {
    /// Number of shard worker threads (clamped to >= 1).
    pub fn num_shards(mut self, n: usize) -> Self {
        self.cfg.num_shards = n.max(1);
        self
    }

    /// Bounded per-shard queue capacity (clamped to >= 1).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.cfg.queue_capacity = n.max(1);
        self
    }

    /// Maximum queryable window `N` per key.
    pub fn max_window(mut self, n: u64) -> Self {
        self.cfg.max_window = n;
        self
    }

    /// Relative error bound per key.
    pub fn eps(mut self, eps: f64) -> Self {
        self.cfg.eps = eps;
        self
    }

    /// Persist to `dir` with default store settings (sync policy
    /// `every-64`, 8 MiB segments, checkpoint every 4096 batches).
    /// Combine with [`EngineConfigBuilder::persist_config`] for full
    /// control.
    pub fn persist(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cfg.persist = Some(PersistConfig::new(dir));
        self
    }

    /// Persist with explicit store settings.
    pub fn persist_config(mut self, persist: PersistConfig) -> Self {
        self.cfg.persist = Some(persist);
        self
    }

    pub fn build(self) -> EngineConfig {
        self.cfg
    }
}

/// Commands a shard worker consumes from its bounded queue. Batches and
/// queries carry their [`TraceCtx`] plus the enqueue timestamp (0 when
/// untraced) so the worker can record the queue-wait span.
enum Cmd {
    /// A per-shard sub-batch of ingest events.
    Batch {
        batch: Vec<KeyedBits>,
        ctx: TraceCtx,
        enq_ns: u64,
    },
    Query {
        key: Key,
        window: u64,
        reply: std::sync::mpsc::Sender<Result<Estimate, WaveError>>,
        ctx: TraceCtx,
        enq_ns: u64,
    },
    Snapshot {
        reply: std::sync::mpsc::Sender<ShardSnapshot>,
    },
    /// A barrier: replied to once everything enqueued before it has
    /// been applied.
    Flush { reply: std::sync::mpsc::Sender<()> },
    /// Durably checkpoint the shard's synopses (no-op without
    /// persistence), replying with the outcome.
    Checkpoint {
        reply: std::sync::mpsc::Sender<Result<(), WaveError>>,
    },
    /// Install one key's synopsis from its encoded bytes, replacing any
    /// local state for that key — the follower half of cluster
    /// replication. The bytes stay opaque until the worker decodes them
    /// with the fn pointer captured at construction.
    Install {
        key: Key,
        bytes: Vec<u8>,
        reply: std::sync::mpsc::Sender<Result<(), WaveError>>,
    },
}

/// Point-in-time state of one shard, from [`Engine::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Keys with a live synopsis.
    pub keys: usize,
    /// Sum of `space_report().resident_bytes` over the shard's keys.
    pub resident_bytes: usize,
    /// Sum of `space_report().synopsis_bits`.
    pub synopsis_bits: u64,
    /// Sum of stored entries.
    pub entries: usize,
    /// Ingest batches sitting in the queue when the snapshot ran.
    pub queue_depth: usize,
}

/// Point-in-time state of the whole engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnapshot {
    pub shards: Vec<ShardSnapshot>,
    /// Items shed by non-blocking ingest while queues were full.
    pub dropped_items: u64,
    /// Number of ingest calls that hit a full queue.
    pub backpressure_events: u64,
}

impl EngineSnapshot {
    /// Total live keys across shards.
    pub fn keys(&self) -> usize {
        self.shards.iter().map(|s| s.keys).sum()
    }

    /// Total resident bytes across shards.
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.resident_bytes).sum()
    }

    /// Total stored entries across shards.
    pub fn entries(&self) -> usize {
        self.shards.iter().map(|s| s.entries).sum()
    }

    /// Multi-line human-readable rendering (one line per shard plus a
    /// totals line), matching the CLI's `--stats` style.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== engine ==\n");
        for s in &self.shards {
            out.push_str(&format!(
                "shard {:<3} keys {:<8} entries {:<9} resident_bytes {:<11} queue_depth {}\n",
                s.shard, s.keys, s.entries, s.resident_bytes, s.queue_depth
            ));
        }
        out.push_str(&format!(
            "total     keys {:<8} entries {:<9} resident_bytes {:<11} dropped {} backpressure {}\n",
            self.keys(),
            self.entries(),
            self.resident_bytes(),
            self.dropped_items,
            self.backpressure_events
        ));
        out
    }
}

struct ShardHandle {
    tx: Option<SyncSender<Cmd>>,
    /// Ingest batches enqueued but not yet applied by the worker.
    depth: Arc<AtomicUsize>,
    worker: Option<JoinHandle<()>>,
}

impl ShardHandle {
    fn tx(&self) -> &SyncSender<Cmd> {
        self.tx.as_ref().expect("sender live until Drop")
    }
}

/// The sharded serving engine. See the crate docs for the design; the
/// API surface is `new` / `ingest` (one [`IngestRequest`] entry point) /
/// `query` / `flush` / `snapshot` / `checkpoint`.
///
/// `S` is the per-key synopsis type, `R` the observability sink
/// ([`NoopRecorder`] by default — zero-cost when disabled, as
/// everywhere in this workspace).
pub struct Engine<
    S: BitSynopsis + Send + 'static,
    R: Recorder + Send + Sync + 'static = NoopRecorder,
> {
    cfg: EngineConfig,
    shards: Vec<ShardHandle>,
    rec: Arc<R>,
    dropped_items: AtomicU64,
    backpressure_events: AtomicU64,
    /// When set, workers skip the final clean-shutdown checkpoint so
    /// Drop leaves the disk exactly as a hard crash would.
    crashed: Arc<AtomicBool>,
    _synopsis: PhantomData<S>,
}

impl Engine<DetWave> {
    /// Serve a [`DetWave`] per key with the config's window and error
    /// bound, without observability. Validates the synopsis parameters
    /// up front.
    pub fn new(cfg: EngineConfig) -> Result<Self, WaveError> {
        let (n, eps) = (cfg.max_window, cfg.eps);
        Self::with_factory(cfg, move || DetWave::new(n, eps))
    }
}

impl Engine<DetWave, waves_obs::MetricsRegistry> {
    /// [`Engine::new`] reporting into a shared [`waves_obs::MetricsRegistry`].
    pub fn new_recorded(
        cfg: EngineConfig,
        rec: Arc<waves_obs::MetricsRegistry>,
    ) -> Result<Self, WaveError> {
        let (n, eps) = (cfg.max_window, cfg.eps);
        Self::with_factory_recorded(cfg, move || DetWave::new(n, eps), rec)
    }
}

impl<S: BitSynopsis + SynopsisCodec + Send + 'static> Engine<S, NoopRecorder> {
    /// Serve an arbitrary synopsis per key: the factory builds one fresh
    /// synopsis per newly-seen key. It is called once eagerly so a
    /// misconfigured factory fails at construction, not mid-stream.
    pub fn with_factory<F>(cfg: EngineConfig, factory: F) -> Result<Self, WaveError>
    where
        F: Fn() -> Result<S, WaveError> + Send + Sync + 'static,
    {
        Self::with_factory_recorded(cfg, factory, Arc::new(NoopRecorder))
    }
}

impl<S, R> Engine<S, R>
where
    S: BitSynopsis + Send + 'static,
    R: Recorder + Send + Sync + 'static,
{
    /// Fully general constructor: custom synopsis factory plus a shared
    /// recorder (e.g. an `Arc<MetricsRegistry>`).
    ///
    /// With [`EngineConfig::persist`] set, this is also the recovery
    /// path: each shard loads its newest valid checkpoint (decoding
    /// every key's synopsis via [`SynopsisCodec`]) and replays the
    /// acknowledged WAL tail through [`BitSynopsis::push_words`] before
    /// the shard accepts new work. A corrupt persist directory (META
    /// mismatch, undecodable checkpoint entry) fails construction; a
    /// torn WAL tail is truncated silently — that is the crash-recovery
    /// contract, not an error.
    pub fn with_factory_recorded<F>(
        cfg: EngineConfig,
        factory: F,
        rec: Arc<R>,
    ) -> Result<Self, WaveError>
    where
        F: Fn() -> Result<S, WaveError> + Send + Sync + 'static,
        S: SynopsisCodec,
    {
        // Surface synopsis-parameter errors now rather than inside a
        // worker thread on first ingest.
        drop(factory()?);
        let num_shards = cfg.num_shards.max(1);
        let capacity = cfg.queue_capacity.max(1);
        let store = match &cfg.persist {
            Some(pc) => Some(Store::open(&pc.dir, num_shards as u32).map_err(WaveError::io)?),
            None => None,
        };
        let factory = Arc::new(factory);
        let crashed = Arc::new(AtomicBool::new(false));
        let mut shards = Vec::with_capacity(num_shards);
        for shard in 0..num_shards {
            // Recover this shard's durable state before its worker
            // spawns, so a recovery failure aborts construction and a
            // recovered engine never serves a pre-replay view.
            let (initial_keys, persist) = match (&store, &cfg.persist) {
                (Some(store), Some(pc)) => {
                    let recovered = ShardStore::recover(
                        &store.shard_dir(shard),
                        pc.sync,
                        pc.segment_bytes,
                        rec.as_ref(),
                    )
                    .map_err(WaveError::io)?;
                    let mut keys: HashMap<Key, S> = HashMap::new();
                    for (key, bytes) in &recovered.entries {
                        let synopsis = S::decode_synopsis(bytes).map_err(|e| {
                            WaveError::io(std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                format!("checkpoint entry for key {key}: {e}"),
                            ))
                        })?;
                        keys.insert(*key, synopsis);
                    }
                    for batch in &recovered.batches {
                        for (key, bits) in batch {
                            keys.entry(*key)
                                .or_insert_with(|| {
                                    factory().expect("factory validated at construction")
                                })
                                .push_words(bits.as_ref());
                        }
                    }
                    let persist = ShardPersist {
                        store: recovered.store,
                        encode: S::encode_synopsis,
                        checkpoint_every: pc.checkpoint_every_batches,
                        applied_since_checkpoint: 0,
                    };
                    (keys, Some(persist))
                }
                _ => (HashMap::new(), None),
            };
            let (tx, rx) = std::sync::mpsc::sync_channel::<Cmd>(capacity);
            let depth = Arc::new(AtomicUsize::new(0));
            let worker_depth = Arc::clone(&depth);
            let worker_factory = Arc::clone(&factory);
            let worker_rec = Arc::clone(&rec);
            let worker_crashed = Arc::clone(&crashed);
            let worker = std::thread::Builder::new()
                .name(format!("waves-engine-shard-{shard}"))
                .spawn(move || {
                    shard_worker(
                        shard,
                        rx,
                        worker_depth,
                        worker_factory,
                        worker_rec,
                        initial_keys,
                        persist,
                        worker_crashed,
                        S::decode_synopsis,
                    )
                })
                .expect("spawn shard worker");
            shards.push(ShardHandle {
                tx: Some(tx),
                depth,
                worker: Some(worker),
            });
        }
        Ok(Engine {
            cfg,
            shards,
            rec,
            dropped_items: AtomicU64::new(0),
            backpressure_events: AtomicU64::new(0),
            crashed,
            _synopsis: PhantomData,
        })
    }

    /// Number of shard worker threads.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Items shed so far by non-blocking ingest hitting full queues.
    pub fn dropped_items(&self) -> u64 {
        self.dropped_items.load(Ordering::Relaxed)
    }

    /// Crash-simulation support (used by `waves-dst`): make the next
    /// Drop skip the final clean-shutdown checkpoint. Workers still
    /// drain every enqueued command — acknowledged batches are applied
    /// and WAL-appended under the configured sync policy — but the disk
    /// is then left exactly as a hard process kill would leave it: a
    /// synced WAL prefix plus whatever checkpoints already existed.
    pub fn crash_on_drop(&self) {
        self.crashed.store(true, Ordering::Relaxed);
    }

    /// Fibonacci-hash the key onto a shard: multiplicative mixing spreads
    /// sequential user ids evenly, and the high bits drive the modulo so
    /// low-entropy keys don't alias.
    fn shard_of(&self, key: Key) -> usize {
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 32) as usize) % self.shards.len()
    }

    /// Timestamp for the queue-wait span, or 0 when this command is
    /// untraced (so the hot path never reads the clock).
    fn enq_ns(&self, ctx: TraceCtx) -> u64 {
        if ctx.active() && self.rec.trace_enabled() {
            now_ns()
        } else {
            0
        }
    }

    /// Enqueue one batch on one shard, non-blocking. Counts queue depth
    /// and backpressure; the caller decides whether the shed items were
    /// clones (droppable) or the caller's own copy (retryable).
    fn try_enqueue(
        &self,
        shard: usize,
        batch: Vec<KeyedBits>,
        ctx: TraceCtx,
    ) -> Result<(), WaveError> {
        let items: u64 = batch.iter().map(|(_, bits)| bits.len()).sum();
        // Count the batch in *before* sending so the worker's decrement
        // can never race ahead of the increment and wrap the counter.
        let depth = self.shards[shard].depth.fetch_add(1, Ordering::Relaxed) + 1;
        let cmd = Cmd::Batch {
            batch,
            ctx,
            enq_ns: self.enq_ns(ctx),
        };
        match self.shards[shard].tx().try_send(cmd) {
            Ok(()) => {
                self.rec.observe(HistId::EngineQueueDepth, depth as u64);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.shards[shard].depth.fetch_sub(1, Ordering::Relaxed);
                self.backpressure_events.fetch_add(1, Ordering::Relaxed);
                self.rec.incr(MetricId::EngineBackpressureEvents, 1);
                self.rec.incr(MetricId::EngineItemsDropped, items);
                self.dropped_items.fetch_add(items, Ordering::Relaxed);
                Err(WaveError::Backpressure { shard })
            }
            Err(TrySendError::Disconnected(_)) => unreachable!("worker lives until Drop"),
        }
    }

    fn enqueue_blocking(&self, shard: usize, batch: Vec<KeyedBits>, ctx: TraceCtx) {
        let depth = self.shards[shard].depth.fetch_add(1, Ordering::Relaxed) + 1;
        let enq_ns = self.enq_ns(ctx);
        self.shards[shard]
            .tx()
            .send(Cmd::Batch { batch, ctx, enq_ns })
            .expect("worker lives until Drop");
        self.rec.observe(HistId::EngineQueueDepth, depth as u64);
    }

    /// The single ingest entry point: deliver every entry of `req`,
    /// grouped into one sub-batch per shard (one channel round-trip per
    /// shard, not per event).
    ///
    /// Non-blocking (the default): a full shard queue sheds that shard's
    /// entire sub-batch — the shed item count lands in
    /// [`Engine::dropped_items`] and the first failing shard's
    /// [`WaveError::Backpressure`] is returned — while sub-batches for
    /// healthy shards are still delivered.
    ///
    /// With [`IngestRequest::blocking`], waits for queue space instead
    /// (the lossless replay path used by the CLI and benches) and always
    /// returns `Ok`.
    ///
    /// With [`IngestRequest::traced`], each shard's worker records
    /// queue-wait, apply, and WAL spans parented to `ctx.parent` under
    /// `ctx.trace`; identical to an untraced request when `ctx` is
    /// [`TraceCtx::NONE`] or the recorder keeps no traces.
    pub fn ingest(&self, req: IngestRequest) -> Result<(), WaveError> {
        let IngestRequest {
            entries,
            blocking,
            ctx,
            ..
        } = req;
        let mut first_err = Ok(());
        for (shard, sub) in self.split_by_shard(entries) {
            if blocking {
                self.enqueue_blocking(shard, sub, ctx);
            } else if let Err(e) = self.try_enqueue(shard, sub, ctx) {
                if first_err.is_ok() {
                    first_err = Err(e);
                }
            }
        }
        first_err
    }

    /// Deprecated shim for the pre-[`IngestRequest`] API.
    #[deprecated(note = "use `ingest(IngestRequest::of(key, bits).blocking(true))`")]
    pub fn ingest_blocking(&self, key: Key, bits: &[bool]) {
        let _ = self.ingest(IngestRequest::of(key, bits).blocking(true));
    }

    /// Deprecated shim for the pre-[`IngestRequest`] API.
    #[deprecated(note = "use `ingest(IngestRequest::batch(entries))`")]
    pub fn ingest_batch(&self, batch: &[(Key, Vec<bool>)]) -> Result<(), WaveError> {
        self.ingest(IngestRequest::batch(repack(batch)))
    }

    /// Deprecated shim for the pre-[`IngestRequest`] API.
    #[deprecated(note = "use `ingest(IngestRequest::batch(entries).traced(ctx))`")]
    pub fn ingest_batch_traced(
        &self,
        batch: &[(Key, Vec<bool>)],
        ctx: TraceCtx,
    ) -> Result<(), WaveError> {
        self.ingest(IngestRequest::batch(repack(batch)).traced(ctx))
    }

    /// Deprecated shim for the pre-[`IngestRequest`] API.
    #[deprecated(note = "use `ingest(IngestRequest::batch(entries).blocking(true))`")]
    pub fn ingest_batch_blocking(&self, batch: &[(Key, Vec<bool>)]) {
        let _ = self.ingest(IngestRequest::batch(repack(batch)).blocking(true));
    }

    /// Group events into per-shard sub-batches, preserving order within
    /// each shard (per-key order is what correctness needs, and a key
    /// always maps to one shard). Takes the batch by value: packed
    /// buffers move into their shard's sub-batch without copying.
    fn split_by_shard(&self, batch: Vec<KeyedBits>) -> Vec<(usize, Vec<KeyedBits>)> {
        let mut per_shard: Vec<Vec<KeyedBits>> = vec![Vec::new(); self.shards.len()];
        for (key, bits) in batch {
            per_shard[self.shard_of(key)].push((key, bits));
        }
        per_shard
            .into_iter()
            .enumerate()
            .filter(|(_, sub)| !sub.is_empty())
            .collect()
    }

    /// Estimate the 1's count in the last `window` bits of `key`'s
    /// stream. Travels the shard's FIFO behind any batches already
    /// enqueued, so it observes this caller's prior (non-shed) ingests
    /// for the key. Returns [`WaveError::UnknownKey`] for never-seen
    /// keys and the synopsis's own errors otherwise.
    pub fn query(&self, key: Key, window: u64) -> Result<Estimate, WaveError> {
        self.query_traced(key, window, TraceCtx::NONE)
    }

    /// [`Engine::query`] carrying a [`TraceCtx`]: the shard worker
    /// records queue-wait and execute spans parented to `ctx.parent`.
    pub fn query_traced(
        &self,
        key: Key,
        window: u64,
        ctx: TraceCtx,
    ) -> Result<Estimate, WaveError> {
        let started = self.rec.enabled().then(Instant::now);
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        self.shards[self.shard_of(key)]
            .tx()
            .send(Cmd::Query {
                key,
                window,
                reply: reply_tx,
                ctx,
                enq_ns: self.enq_ns(ctx),
            })
            .expect("worker lives until Drop");
        let res = reply_rx.recv().expect("worker replies before exiting");
        if let Some(t0) = started {
            self.rec
                .observe(HistId::EngineQueryNs, t0.elapsed().as_nanos() as u64);
        }
        res
    }

    /// Barrier: returns once every shard has applied everything enqueued
    /// before this call.
    pub fn flush(&self) {
        let replies: Vec<_> = self
            .shards
            .iter()
            .map(|shard| {
                let (tx, rx) = std::sync::mpsc::channel();
                shard
                    .tx()
                    .send(Cmd::Flush { reply: tx })
                    .expect("worker lives until Drop");
                rx
            })
            .collect();
        for rx in replies {
            rx.recv().expect("worker replies before exiting");
        }
    }

    /// Collect a point-in-time snapshot: per-shard key counts, resident
    /// bytes (via each synopsis's `space_report`), stored entries, and
    /// queue depths, plus the engine-level shed counters. Walks every
    /// key, so treat it as an operator-frequency operation, not a
    /// hot-path one.
    pub fn snapshot(&self) -> EngineSnapshot {
        let replies: Vec<_> = self
            .shards
            .iter()
            .map(|shard| {
                let (tx, rx) = std::sync::mpsc::channel();
                shard
                    .tx()
                    .send(Cmd::Snapshot { reply: tx })
                    .expect("worker lives until Drop");
                rx
            })
            .collect();
        let mut shards: Vec<ShardSnapshot> = replies
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let mut snap = rx.recv().expect("worker replies before exiting");
                snap.shard = i;
                snap
            })
            .collect();
        shards.sort_by_key(|s| s.shard);
        EngineSnapshot {
            shards,
            dropped_items: self.dropped_items.load(Ordering::Relaxed),
            backpressure_events: self.backpressure_events.load(Ordering::Relaxed),
        }
    }

    /// Install `key`'s synopsis from its encoded bytes (a synopsis's
    /// own `encode()` output), **replacing** whatever local state the
    /// key had — the follower half of cluster replication, where a
    /// primary ships its authoritative state and this engine adopts it
    /// verbatim.
    ///
    /// The install travels the key's shard FIFO like any batch, so it
    /// is ordered against ingest: batches enqueued before it apply
    /// first and are then overwritten; batches after it apply on top.
    /// Installed state is *not* WAL-logged — after a crash the key
    /// reverts to its logged history, and the cluster layer's
    /// anti-entropy pass is what re-ships the difference.
    ///
    /// Undecodable bytes fail with an `InvalidData` [`WaveError::Io`]
    /// and leave the key's previous state untouched.
    pub fn install_synopsis(&self, key: Key, bytes: Vec<u8>) -> Result<(), WaveError> {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        self.shards[self.shard_of(key)]
            .tx()
            .send(Cmd::Install {
                key,
                bytes,
                reply: reply_tx,
            })
            .expect("worker lives until Drop");
        reply_rx.recv().expect("worker replies before exiting")
    }

    /// Durably checkpoint every shard: each worker serializes all of its
    /// keys' synopses, fsyncs them to a new checkpoint file, and
    /// reclaims the WAL history the checkpoint supersedes. Travels the
    /// per-shard FIFO, so everything enqueued before this call is
    /// covered. Without persistence configured this is a successful
    /// no-op; with persistence it returns the first shard's error, e.g.
    /// after a WAL write failure disabled durability on a shard.
    pub fn checkpoint(&self) -> Result<(), WaveError> {
        let replies: Vec<_> = self
            .shards
            .iter()
            .map(|shard| {
                let (tx, rx) = std::sync::mpsc::channel();
                shard
                    .tx()
                    .send(Cmd::Checkpoint { reply: tx })
                    .expect("worker lives until Drop");
                rx
            })
            .collect();
        let mut first_err = Ok(());
        for rx in replies {
            let res = rx.recv().expect("worker replies before exiting");
            if res.is_err() && first_err.is_ok() {
                first_err = res;
            }
        }
        first_err
    }
}

impl<S, R> Drop for Engine<S, R>
where
    S: BitSynopsis + Send + 'static,
    R: Recorder + Send + Sync + 'static,
{
    fn drop(&mut self) {
        for shard in &mut self.shards {
            shard.tx = None; // close the channel; the worker drains and exits
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                worker.join().ok();
            }
        }
    }
}

/// A shard worker's durability state. The synopsis encoder is a plain
/// fn pointer captured at construction (where the [`SynopsisCodec`]
/// bound lives), so the worker loop itself needs no codec bound.
struct ShardPersist<S> {
    store: ShardStore,
    encode: fn(&S) -> Vec<u8>,
    /// Auto-checkpoint after this many applied batches; 0 disables.
    checkpoint_every: u64,
    applied_since_checkpoint: u64,
}

impl<S> ShardPersist<S> {
    fn write_checkpoint<R: Recorder + ?Sized>(
        &mut self,
        keys: &HashMap<Key, S>,
        rec: &R,
    ) -> std::io::Result<()> {
        let entries: Vec<(u64, Vec<u8>)> =
            keys.iter().map(|(k, s)| (*k, (self.encode)(s))).collect();
        self.store.checkpoint(entries, rec)?;
        self.applied_since_checkpoint = 0;
        Ok(())
    }
}

/// Pack bool-slice batches from the deprecated shims into the word
/// currency the rest of the stack speaks.
fn repack(batch: &[(Key, Vec<bool>)]) -> Vec<KeyedBits> {
    batch
        .iter()
        .map(|(key, bits)| (*key, Bits::from_bools(bits)))
        .collect()
}

/// Key-family fingerprint for the registry's load-skew dimension: the
/// top 4 bits of the same Fibonacci mix [`Engine::shard_of`] uses, so
/// it costs one multiply-shift already paid for routing.
#[inline]
fn family_of(key: Key) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize
}

/// The shard worker loop: single-threaded owner of this shard's keys.
///
/// With persistence, every batch is WAL-appended *before* it is applied;
/// an unrecoverable WAL io error disables durability for this shard
/// (serving continues from memory) and is surfaced as a
/// `store.wal.disabled` event plus a failed reply to the next explicit
/// checkpoint. Clean shutdown (channel closed) writes a final
/// checkpoint so `OnCheckpoint` deployments lose nothing across a
/// graceful restart.
#[allow(clippy::too_many_arguments)]
fn shard_worker<S, R, F>(
    shard: usize,
    rx: Receiver<Cmd>,
    depth: Arc<AtomicUsize>,
    factory: Arc<F>,
    rec: Arc<R>,
    initial_keys: HashMap<Key, S>,
    mut persist: Option<ShardPersist<S>>,
    crashed: Arc<AtomicBool>,
    // Captured at construction (where the `SynopsisCodec` bound lives),
    // like `ShardPersist::encode`, so the loop needs no codec bound.
    decode: fn(&[u8]) -> Result<S, waves_core::codec::CodecError>,
) where
    S: BitSynopsis + Send + 'static,
    R: Recorder + Send + Sync + 'static,
    F: Fn() -> Result<S, WaveError> + Send + Sync + 'static,
{
    // Record the queue-wait span for a traced dequeued command and open
    // the execute span: returns `(execute_span_id, execute_start_ns)`.
    let begin_execute = |ctx: TraceCtx, enq_ns: u64| -> Option<(u64, u64)> {
        if !(ctx.active() && rec.trace_enabled()) {
            return None;
        }
        let t = now_ns();
        rec.span(Span {
            trace: ctx.trace,
            id: next_span_id(),
            parent: ctx.parent,
            stage: Stage::Queue,
            start_ns: enq_ns,
            dur_ns: t.saturating_sub(enq_ns),
        });
        Some((next_span_id(), t))
    };
    let end_execute = |ctx: TraceCtx, opened: Option<(u64, u64)>| {
        if let Some((id, t0)) = opened {
            rec.span(Span {
                trace: ctx.trace,
                id,
                parent: ctx.parent,
                stage: Stage::Shard,
                start_ns: t0,
                dur_ns: now_ns().saturating_sub(t0),
            });
        }
    };
    let mut keys = initial_keys;
    let mut wal_failed = false;
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Batch { batch, ctx, enq_ns } => {
                depth.fetch_sub(1, Ordering::Relaxed);
                let execute = begin_execute(ctx, enq_ns);
                let wal_ctx = match execute {
                    Some((id, _)) => ctx.child(id),
                    None => TraceCtx::NONE,
                };
                let started = rec.enabled().then(Instant::now);
                if let Some(p) = persist.as_mut() {
                    if p.store
                        .append_batch_traced(&batch, rec.as_ref(), wal_ctx)
                        .is_err()
                    {
                        // No reply channel exists for a batch, so degrade:
                        // keep serving from memory, stop logging, and make
                        // the failure visible to operators.
                        rec.incr(MetricId::StoreWalDisabled, 1);
                        rec.event(Event {
                            name: "store.wal.disabled",
                            fields: &[],
                        });
                        persist = None;
                        wal_failed = true;
                    }
                }
                let mut items = 0u64;
                for (key, bits) in &batch {
                    let synopsis = keys
                        .entry(*key)
                        .or_insert_with(|| factory().expect("factory validated at construction"));
                    // The word-packed apply path: 64 bits per step, zero
                    // runs collapsed in O(1) by the synopsis overrides.
                    synopsis.push_words(bits.as_ref());
                    items += bits.len();
                    rec.incr_family(family_of(*key), bits.len());
                }
                if let Some(t0) = started {
                    rec.observe(HistId::EngineIngestBatchNs, t0.elapsed().as_nanos() as u64);
                }
                rec.incr(MetricId::EngineBatchesIngested, 1);
                rec.incr(MetricId::EngineItemsIngested, items);
                rec.incr_shard(shard, ShardStat::Batches, 1);
                rec.incr_shard(shard, ShardStat::Items, items);
                end_execute(ctx, execute);
                if let Some(p) = persist.as_mut() {
                    p.applied_since_checkpoint += 1;
                    if p.checkpoint_every > 0
                        && p.applied_since_checkpoint >= p.checkpoint_every
                        && p.write_checkpoint(&keys, rec.as_ref()).is_err()
                    {
                        rec.event(Event {
                            name: "store.checkpoint.failed",
                            fields: &[],
                        });
                        // The WAL is still intact; keep logging and
                        // retry at the next checkpoint interval.
                        p.applied_since_checkpoint = 0;
                    }
                }
            }
            Cmd::Query {
                key,
                window,
                reply,
                ctx,
                enq_ns,
            } => {
                let execute = begin_execute(ctx, enq_ns);
                let res = match keys.get(&key) {
                    Some(synopsis) => synopsis.query_window(window),
                    None => Err(WaveError::UnknownKey { key }),
                };
                rec.incr(MetricId::EngineQueriesServed, 1);
                rec.incr_shard(shard, ShardStat::Queries, 1);
                // Close the span before replying so a caller that
                // inspects the ring right after the reply sees it.
                end_execute(ctx, execute);
                let _ = reply.send(res);
            }
            Cmd::Snapshot { reply } => {
                let mut snap = ShardSnapshot {
                    shard: 0, // engine-side fills the index in
                    keys: keys.len(),
                    resident_bytes: 0,
                    synopsis_bits: 0,
                    entries: 0,
                    queue_depth: depth.load(Ordering::Relaxed),
                };
                for synopsis in keys.values() {
                    let r = synopsis.space_report();
                    snap.resident_bytes += r.resident_bytes;
                    snap.synopsis_bits += r.synopsis_bits;
                    snap.entries += r.entries;
                }
                let _ = reply.send(snap);
            }
            Cmd::Flush { reply } => {
                let _ = reply.send(());
            }
            Cmd::Checkpoint { reply } => {
                let res = match persist.as_mut() {
                    Some(p) => p
                        .write_checkpoint(&keys, rec.as_ref())
                        .map_err(WaveError::io),
                    None if wal_failed => Err(WaveError::io(std::io::Error::other(
                        "persistence disabled after WAL write failure",
                    ))),
                    None => Ok(()), // persistence never configured: no-op
                };
                let _ = reply.send(res);
            }
            Cmd::Install { key, bytes, reply } => {
                let res = match decode(&bytes) {
                    Ok(synopsis) => {
                        keys.insert(key, synopsis);
                        rec.incr(MetricId::EngineSynopsesInstalled, 1);
                        Ok(())
                    }
                    Err(e) => Err(WaveError::io(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("synopsis install for key {key}: {e}"),
                    ))),
                };
                let _ = reply.send(res);
            }
        }
    }
    // Clean shutdown: land everything durably regardless of sync policy.
    // A simulated crash ([`Engine::crash_on_drop`]) skips this so the
    // WAL prefix — not a fresh checkpoint — is what recovery sees.
    if crashed.load(Ordering::Relaxed) {
        return;
    }
    if let Some(p) = persist.as_mut() {
        if p.write_checkpoint(&keys, rec.as_ref()).is_err() {
            rec.event(Event {
                name: "store.shutdown_checkpoint.failed",
                fields: &[],
            });
            // Best effort fallback: at least fsync the WAL tail.
            let _ = p.store.sync(rec.as_ref());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waves_obs::MetricsRegistry;

    fn lcg_bits(seed: u64, len: usize, density_mod: u64, density_lt: u64) -> Vec<bool> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % density_mod < density_lt
            })
            .collect()
    }

    fn small_cfg(shards: usize) -> EngineConfig {
        EngineConfig::builder()
            .num_shards(shards)
            .max_window(64)
            .eps(0.25)
            .build()
    }

    #[test]
    fn config_builder_defaults_and_clamps() {
        let cfg = EngineConfig::builder().build();
        assert_eq!(cfg.num_shards, 4);
        assert_eq!(cfg.queue_capacity, 1024);
        let cfg = EngineConfig::builder()
            .num_shards(0)
            .queue_capacity(0)
            .build();
        assert_eq!(cfg.num_shards, 1);
        assert_eq!(cfg.queue_capacity, 1);
    }

    #[test]
    fn bad_synopsis_params_fail_at_construction() {
        let cfg = EngineConfig::builder().eps(7.5).build();
        assert_eq!(Engine::new(cfg).err(), Some(WaveError::InvalidEpsilon(7.5)));
        let cfg = EngineConfig::builder().max_window(0).build();
        assert!(Engine::new(cfg).is_err());
    }

    #[test]
    fn per_key_results_match_single_threaded_oracle() {
        let engine = Engine::new(small_cfg(4)).unwrap();
        let num_keys = 200u64;
        let mut oracles: HashMap<Key, DetWave> = HashMap::new();
        // Interleave keys heavily: several rounds of per-key chunks.
        for round in 0..5u64 {
            let mut batch: Vec<KeyedBits> = Vec::new();
            for key in 0..num_keys {
                let bits = lcg_bits(round * 1_000 + key, 37, 3, 1);
                oracles
                    .entry(key)
                    .or_insert_with(|| DetWave::new(64, 0.25).unwrap())
                    .push_bits(&bits);
                batch.push((key, Bits::from(bits)));
            }
            engine
                .ingest(IngestRequest::batch(batch).blocking(true))
                .unwrap();
        }
        engine.flush();
        for key in 0..num_keys {
            for window in [1u64, 13, 64] {
                assert_eq!(
                    engine.query(key, window).unwrap(),
                    oracles[&key].query(window).unwrap(),
                    "key={key} window={window}"
                );
            }
        }
    }

    #[test]
    fn install_synopsis_replaces_key_state() {
        let engine = Engine::new(small_cfg(2)).unwrap();
        engine
            .ingest(IngestRequest::of(9, [true, true, true]).blocking(true))
            .unwrap();
        engine.flush();
        assert_eq!(engine.query(9, 64).unwrap().value, 3.0);

        // Build a replacement synopsis elsewhere (a "primary") and ship
        // its encode() bytes; the install replaces the local state.
        let mut primary = DetWave::new(64, 0.25).unwrap();
        primary.push_bits(&[true, false, false, true, true, false]);
        engine.install_synopsis(9, primary.encode()).unwrap();
        engine.flush();
        assert_eq!(engine.query(9, 64).unwrap(), primary.query(64).unwrap());

        // Installing under a fresh key creates it.
        let mut other = DetWave::new(64, 0.25).unwrap();
        other.push_bits(&[true]);
        engine.install_synopsis(77, other.encode()).unwrap();
        assert_eq!(engine.query(77, 64).unwrap().value, 1.0);
    }

    #[test]
    fn install_synopsis_rejects_garbage_and_keeps_state() {
        let engine = Engine::new(small_cfg(1)).unwrap();
        engine
            .ingest(IngestRequest::of(4, [true, true]).blocking(true))
            .unwrap();
        engine.flush();
        // Empty input can't even yield the gamma-coded max_window.
        let err = engine.install_synopsis(4, Vec::new()).unwrap_err();
        match err {
            WaveError::Io(io) => assert_eq!(io.kind(), std::io::ErrorKind::InvalidData),
            other => panic!("expected Io(InvalidData), got {other:?}"),
        }
        // The failed install left the previous state untouched.
        assert_eq!(engine.query(4, 64).unwrap().value, 2.0);
    }

    #[test]
    fn unknown_key_and_oversized_window_errors() {
        let engine = Engine::new(small_cfg(2)).unwrap();
        engine
            .ingest(IngestRequest::of(1, [true]).blocking(true))
            .unwrap();
        engine.flush();
        assert_eq!(
            engine.query(999, 64).err(),
            Some(WaveError::UnknownKey { key: 999 })
        );
        assert_eq!(
            engine.query(1, 65).err(),
            Some(WaveError::WindowTooLarge {
                requested: 65,
                max: 64
            })
        );
    }

    #[test]
    fn backpressure_sheds_and_counts() {
        let cfg = EngineConfig::builder()
            .num_shards(1)
            .queue_capacity(1)
            .max_window(1 << 20)
            .eps(0.01)
            .build();
        let engine = Engine::new(cfg).unwrap();
        // A large first batch keeps the single worker busy while we spam
        // the capacity-1 queue; at least one try must bounce.
        let big = vec![(0u64, Bits::from(vec![true; 1 << 20]))];
        engine
            .ingest(IngestRequest::batch(big).blocking(true))
            .unwrap();
        let mut saw_backpressure = false;
        for _ in 0..10_000 {
            match engine.ingest(IngestRequest::of(0, [true, false])) {
                Err(WaveError::Backpressure { shard }) => {
                    assert_eq!(shard, 0);
                    saw_backpressure = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
                Ok(()) => {}
            }
        }
        assert!(saw_backpressure, "capacity-1 queue never filled");
        assert!(engine.dropped_items() >= 2);
        let snap = engine.snapshot();
        assert!(snap.backpressure_events >= 1);
        assert_eq!(snap.dropped_items, engine.dropped_items());
    }

    #[test]
    fn partial_batch_delivery_under_backpressure() {
        // One-shot: non-blocking batch into empty queues always fits.
        let engine = Engine::new(small_cfg(2)).unwrap();
        let batch: Vec<KeyedBits> = (0..10u64).map(|k| (k, Bits::from([true; 4]))).collect();
        engine.ingest(IngestRequest::batch(batch)).unwrap();
        engine.flush();
        for k in 0..10u64 {
            assert_eq!(engine.query(k, 64).unwrap(), Estimate::exact(4), "k={k}");
        }
    }

    #[test]
    fn snapshot_reports_keys_and_space() {
        let engine = Engine::new(small_cfg(3)).unwrap();
        let batch: Vec<KeyedBits> = (0..50u64)
            .map(|k| (k, Bits::from(lcg_bits(k, 100, 2, 1))))
            .collect();
        engine
            .ingest(IngestRequest::batch(batch).blocking(true))
            .unwrap();
        engine.flush();
        let snap = engine.snapshot();
        assert_eq!(snap.shards.len(), 3);
        assert_eq!(snap.keys(), 50);
        assert!(snap.entries() > 0);
        assert!(snap.resident_bytes() > 0);
        assert_eq!(snap.dropped_items, 0);
        // Every shard got some keys (fibonacci hashing spreads 50 keys).
        assert!(snap.shards.iter().all(|s| s.keys > 0));
        let text = snap.to_text();
        assert!(text.contains("== engine =="));
        assert!(text.contains("total"));
    }

    #[test]
    fn generic_over_eh_synopsis() {
        let cfg = small_cfg(2);
        let engine = Engine::with_factory(cfg, || waves_eh::EhCount::new(64, 0.25)).unwrap();
        engine
            .ingest(IngestRequest::of(3, [true; 10]).blocking(true))
            .unwrap();
        engine.flush();
        let est = engine.query(3, 64).unwrap();
        assert!(est.brackets(10));
    }

    #[test]
    fn metrics_flow_into_registry() {
        let reg = Arc::new(MetricsRegistry::new());
        let cfg = small_cfg(2);
        let engine = Engine::new_recorded(cfg, Arc::clone(&reg)).unwrap();
        let batch: Vec<KeyedBits> = (0..8u64).map(|k| (k, Bits::from([true; 5]))).collect();
        engine
            .ingest(IngestRequest::batch(batch).blocking(true))
            .unwrap();
        engine.flush();
        engine.query(0, 64).unwrap();
        engine.query(12345, 64).unwrap_err();
        use waves_obs::MetricId as M;
        assert_eq!(reg.counter(M::EngineItemsIngested), 40);
        assert!(reg.counter(M::EngineBatchesIngested) >= 1);
        assert_eq!(reg.counter(M::EngineQueriesServed), 2);
        assert_eq!(reg.counter(M::EngineBackpressureEvents), 0);
        assert!(reg.histogram(HistId::EngineQueryNs).snapshot().count >= 2);
        assert!(reg.histogram(HistId::EngineIngestBatchNs).snapshot().count >= 1);
        assert!(reg.histogram(HistId::EngineQueueDepth).snapshot().count >= 1);
    }

    #[test]
    fn shard_dimension_sums_to_global_counters() {
        let reg = Arc::new(MetricsRegistry::new());
        let engine = Engine::new_recorded(small_cfg(3), Arc::clone(&reg)).unwrap();
        let batch: Vec<KeyedBits> = (0..40u64).map(|k| (k, Bits::from([true; 3]))).collect();
        engine
            .ingest(IngestRequest::batch(batch).blocking(true))
            .unwrap();
        engine.flush();
        for k in 0..10u64 {
            engine.query(k, 64).unwrap();
        }
        use waves_obs::MetricId as M;
        let snap = reg.snapshot();
        let shard_items: u64 = snap.shards.iter().map(|s| s.items).sum();
        let shard_batches: u64 = snap.shards.iter().map(|s| s.batches).sum();
        let shard_queries: u64 = snap.shards.iter().map(|s| s.queries).sum();
        assert_eq!(shard_items, reg.counter(M::EngineItemsIngested));
        assert_eq!(shard_items, 120);
        assert_eq!(shard_batches, reg.counter(M::EngineBatchesIngested));
        assert_eq!(shard_queries, reg.counter(M::EngineQueriesServed));
        // Key families: every ingested item lands in exactly one family.
        assert_eq!(snap.families.iter().sum::<u64>(), 120);
    }

    #[test]
    fn traced_ingest_and_query_record_span_tree() {
        use waves_obs::trace::{SpanRecorder, TraceCtx, TraceId};
        use waves_obs::{Fanout, Stage};
        let rec = Arc::new(Fanout(MetricsRegistry::new(), SpanRecorder::new()));
        let cfg = EngineConfig::builder()
            .num_shards(2)
            .max_window(64)
            .eps(0.25)
            .persist_config(
                PersistConfig::new(waves_store::scratch_dir("engine-trace"))
                    .sync_policy(SyncPolicy::EveryBatch),
            )
            .build();
        let dir = cfg.persist.as_ref().unwrap().dir.clone();
        let (n, eps) = (cfg.max_window, cfg.eps);
        let engine =
            Engine::with_factory_recorded(cfg, move || DetWave::new(n, eps), Arc::clone(&rec))
                .unwrap();
        let ctx = TraceCtx {
            trace: TraceId(42),
            parent: 1,
        };
        engine
            .ingest(IngestRequest::of(7, [true; 5]).traced(ctx))
            .unwrap();
        engine.flush();
        engine.query_traced(7, 64, ctx).unwrap();
        let spans = rec.1.trace(TraceId(42));
        let stages: Vec<Stage> = spans.iter().map(|s| s.stage).collect();
        // Ingest: queue + shard + wal + fsync. Query: queue + shard.
        assert_eq!(stages.iter().filter(|&&s| s == Stage::Queue).count(), 2);
        assert_eq!(stages.iter().filter(|&&s| s == Stage::Shard).count(), 2);
        assert_eq!(stages.iter().filter(|&&s| s == Stage::Wal).count(), 1);
        assert_eq!(stages.iter().filter(|&&s| s == Stage::Fsync).count(), 1);
        // Structure: queue spans parent to the ctx parent, wal parents
        // to the ingest's shard span.
        let wal = spans.iter().find(|s| s.stage == Stage::Wal).unwrap();
        let shard_ids: Vec<u64> = spans
            .iter()
            .filter(|s| s.stage == Stage::Shard)
            .map(|s| s.id)
            .collect();
        assert!(shard_ids.contains(&wal.parent));
        assert!(spans
            .iter()
            .filter(|s| s.stage == Stage::Queue)
            .all(|s| s.parent == 1));
        // Untraced work records no spans.
        engine.ingest(IngestRequest::of(8, [true])).unwrap();
        engine.flush();
        engine.query(8, 64).unwrap();
        assert_eq!(rec.1.spans().len(), spans.len());
        drop(engine);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn queries_observe_prior_ingests_per_key() {
        // FIFO-per-shard read-your-writes: no flush needed between an
        // ingest and a query for the same key.
        let engine = Engine::new(small_cfg(4)).unwrap();
        for i in 0..100u64 {
            engine
                .ingest(IngestRequest::of(i % 7, [true]).blocking(true))
                .unwrap();
            let est = engine.query(i % 7, 64).unwrap();
            assert_eq!(est.value, (i / 7 + 1) as f64, "i={i}");
        }
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let engine = Engine::new(small_cfg(8)).unwrap();
        engine
            .ingest(IngestRequest::of(1, [true; 100]).blocking(true))
            .unwrap();
        drop(engine); // must not hang or panic
    }

    fn persist_cfg(dir: &std::path::Path, shards: usize) -> EngineConfig {
        EngineConfig::builder()
            .num_shards(shards)
            .max_window(64)
            .eps(0.25)
            .persist_config(PersistConfig::new(dir).sync_policy(SyncPolicy::EveryBatch))
            .build()
    }

    #[test]
    fn restart_preserves_state_and_query_results() {
        let dir = waves_store::scratch_dir("engine-restart");
        let mut oracles: HashMap<Key, DetWave> = HashMap::new();
        let cfg = persist_cfg(&dir, 3);
        {
            let engine = Engine::new(cfg.clone()).unwrap();
            for round in 0..4u64 {
                let mut batch: Vec<KeyedBits> = Vec::new();
                for key in 0..60u64 {
                    let bits = lcg_bits(round * 777 + key, 29, 3, 1);
                    oracles
                        .entry(key)
                        .or_insert_with(|| DetWave::new(64, 0.25).unwrap())
                        .push_bits(&bits);
                    batch.push((key, Bits::from(bits)));
                }
                engine
                    .ingest(IngestRequest::batch(batch).blocking(true))
                    .unwrap();
            }
            engine.flush();
        } // clean shutdown: final checkpoint
        let engine = Engine::new(cfg).unwrap();
        let snap = engine.snapshot();
        assert_eq!(snap.keys(), 60, "all keys survive restart");
        assert!(snap.entries() > 0);
        for key in 0..60u64 {
            for window in [1u64, 17, 64] {
                assert_eq!(
                    engine.query(key, window).unwrap(),
                    oracles[&key].query(window).unwrap(),
                    "key={key} window={window}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_replays_wal_without_checkpoint() {
        // Auto-checkpoint disabled and no clean-shutdown path exercised:
        // kill the engine via mem::forget so recovery must come from the
        // WAL alone (EveryBatch syncs acknowledge each batch).
        let dir = waves_store::scratch_dir("engine-wal-only");
        let cfg = EngineConfig::builder()
            .num_shards(2)
            .max_window(64)
            .eps(0.25)
            .persist_config(
                PersistConfig::new(&dir)
                    .sync_policy(SyncPolicy::EveryBatch)
                    .checkpoint_every(0),
            )
            .build();
        {
            let engine = Engine::new(cfg.clone()).unwrap();
            for key in 0..10u64 {
                engine
                    .ingest(IngestRequest::of(key, [true; 7]).blocking(true))
                    .unwrap();
            }
            engine.flush();
            let shard0 = std::fs::read_dir(dir.join("shard-0")).unwrap();
            assert!(
                shard0
                    .filter_map(|e| e.ok())
                    .all(|e| !e.file_name().to_string_lossy().ends_with(".ckpt")),
                "no checkpoint should exist before shutdown"
            );
            // Simulate a crash: leak the engine so Drop never runs and no
            // final checkpoint is written. The workers stay parked on
            // their closed-over receivers; recovery must use the WAL.
            std::mem::forget(engine);
        }
        let engine = Engine::new(cfg).unwrap();
        for key in 0..10u64 {
            assert_eq!(
                engine.query(key, 64).unwrap(),
                Estimate::exact(7),
                "key={key}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explicit_checkpoint_trims_wal_and_survives_restart() {
        let dir = waves_store::scratch_dir("engine-ckpt");
        let cfg = persist_cfg(&dir, 2);
        {
            let engine = Engine::new(cfg.clone()).unwrap();
            for key in 0..20u64 {
                engine
                    .ingest(IngestRequest::of(key, lcg_bits(key, 50, 2, 1)).blocking(true))
                    .unwrap();
            }
            engine.checkpoint().unwrap();
            // Checkpoint rotated each shard onto a fresh segment and
            // reclaimed the old ones: exactly one (empty) segment left.
            for shard in 0..2 {
                let dir = dir.join(format!("shard-{shard}"));
                let segs = std::fs::read_dir(&dir)
                    .unwrap()
                    .filter_map(|e| e.ok())
                    .filter(|e| e.file_name().to_string_lossy().ends_with(".log"))
                    .count();
                assert_eq!(segs, 1, "shard {shard} should hold one live segment");
            }
            engine
                .ingest(IngestRequest::of(99, [true; 3]).blocking(true))
                .unwrap();
        }
        let engine = Engine::new(cfg).unwrap();
        assert_eq!(engine.snapshot().keys(), 21);
        assert_eq!(engine.query(99, 64).unwrap(), Estimate::exact(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The deprecated bool-slice shims still deliver: each forwards to
    /// the [`IngestRequest`] entry point, repacking into words.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_ingest() {
        use waves_obs::trace::{TraceCtx, TraceId};
        let engine = Engine::new(small_cfg(2)).unwrap();
        engine.ingest_blocking(1, &[true, false, true]);
        engine.ingest_batch(&[(2, vec![true; 4])]).unwrap();
        engine.ingest_batch_blocking(&[(3, vec![true; 5])]);
        engine
            .ingest_batch_traced(
                &[(4, vec![true; 6])],
                TraceCtx {
                    trace: TraceId(9),
                    parent: 0,
                },
            )
            .unwrap();
        engine.flush();
        assert_eq!(engine.query(1, 64).unwrap(), Estimate::exact(2));
        assert_eq!(engine.query(2, 64).unwrap(), Estimate::exact(4));
        assert_eq!(engine.query(3, 64).unwrap(), Estimate::exact(5));
        assert_eq!(engine.query(4, 64).unwrap(), Estimate::exact(6));
    }

    #[test]
    fn checkpoint_without_persistence_is_ok() {
        let engine = Engine::new(small_cfg(2)).unwrap();
        engine
            .ingest(IngestRequest::of(1, [true]).blocking(true))
            .unwrap();
        engine.checkpoint().unwrap();
    }

    #[test]
    fn shard_count_mismatch_fails_construction() {
        let dir = waves_store::scratch_dir("engine-shards");
        drop(Engine::new(persist_cfg(&dir, 2)).unwrap());
        let err = Engine::new(persist_cfg(&dir, 3)).err().expect("must fail");
        assert!(matches!(err, WaveError::Io(_)), "got {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eh_synopsis_persists_too() {
        let dir = waves_store::scratch_dir("engine-eh");
        let cfg = persist_cfg(&dir, 2);
        {
            let engine =
                Engine::with_factory(cfg.clone(), || waves_eh::EhCount::new(64, 0.25)).unwrap();
            engine
                .ingest(IngestRequest::of(3, [true; 10]).blocking(true))
                .unwrap();
            engine.flush();
        }
        let engine = Engine::with_factory(cfg, || waves_eh::EhCount::new(64, 0.25)).unwrap();
        assert!(engine.query(3, 64).unwrap().brackets(10));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
